#include "fl/federation.hpp"

#include <algorithm>
#include <cmath>
#include <future>
#include <limits>
#include <string>

#include "check/audit.hpp"
#include "fl/drift_fleet.hpp"
#include "fl/streaming.hpp"
#include "tensor/kernels.hpp"
#include "utils/logging.hpp"

namespace fedclust::fl {
namespace {

/// Dimension-chunked dispatch shared by the flat (weighted_accumulate)
/// and folded (weighted_accumulate_partial) reductions. Chunk boundaries
/// are rounded up to ops::kChunkAlign so every element keeps the same
/// vector-lane membership no matter how many workers split the range —
/// the result stays bit-identical across thread counts.
template <typename ReduceRange>
void chunked_reduce(std::size_t dim, ThreadPool* pool,
                    const ReduceRange& reduce_range) {
  constexpr std::size_t kMinParallelDim = 1u << 15;
  const std::size_t workers = pool != nullptr ? pool->size() : 1;
  if (workers <= 1 || dim < kMinParallelDim) {
    reduce_range(0, dim);
    return;
  }
  std::size_t chunk = (dim + workers - 1) / workers;
  chunk = (chunk + ops::kChunkAlign - 1) / ops::kChunkAlign * ops::kChunkAlign;
  std::vector<std::future<void>> futures;
  futures.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = std::min(dim, w * chunk);
    const std::size_t end = std::min(dim, begin + chunk);
    if (begin >= end) break;
    futures.push_back(
        pool->submit([&reduce_range, begin, end] { reduce_range(begin, end); }));
  }
  for (auto& f : futures) f.get();
}

/// decode(encode(·)) view of every distinct broadcast span the round's
/// survivors start from — the weights the clients actually receive under
/// the download codec (encoded with an empty reference: a broadcast
/// carries absolute weights, not a delta against client state). Returns
/// `start_for` unchanged when no codec applies, so the compression-off
/// path is untouched. The cache is keyed by span data pointer — each
/// distinct cluster/global model is round-tripped exactly once per call.
std::function<std::span<const float>(std::size_t)> downloaded_starts(
    const compress::UpdateCodec* down, std::span<const std::size_t> layout,
    std::size_t model_size, const std::vector<std::size_t>& survivors,
    std::function<std::span<const float>(std::size_t)> start_for) {
  if (down == nullptr) return start_for;
  auto keys = std::make_shared<std::vector<const float*>>();
  auto vals = std::make_shared<std::vector<std::vector<float>>>();
  for (const std::size_t cid : survivors) {
    const std::span<const float> s = start_for(cid);
    FEDCLUST_CHECK(s.size() == model_size,
                   "download codec expects whole-model broadcasts, got "
                       << s.size() << " floats");
    bool seen = false;
    for (const float* k : *keys) seen = seen || k == s.data();
    if (seen) continue;
    keys->push_back(s.data());
    std::vector<float> rt(s.size());
    compress::roundtrip(*down, s, {}, layout, rt);
    vals->push_back(std::move(rt));
  }
  return [keys, vals, start_for = std::move(start_for)](
             std::size_t cid) -> std::span<const float> {
    const std::span<const float> s = start_for(cid);
    for (std::size_t i = 0; i < keys->size(); ++i) {
      if ((*keys)[i] == s.data()) return (*vals)[i];
    }
    FEDCLUST_CHECK(false, "client start span was not pre-decoded");
    return {};
  };
}

}  // namespace

Federation::Federation(nn::Model template_model,
                       std::vector<ClientData> clients,
                       FederationConfig config)
    : Federation(std::move(template_model),
                 std::make_shared<EagerFleet>(std::move(clients)), config) {}

Federation::Federation(nn::Model template_model,
                       std::shared_ptr<ClientSource> source,
                       FederationConfig config)
    : template_(std::move(template_model)),
      source_(std::move(source)),
      config_(config),
      model_size_(template_.num_weights()),
      initial_weights_(template_.flat_weights()),
      fault_plan_(config.faults, config.seed),
      quarantine_(config.robust.validate.max_strikes),
      pool_(config.threads),
      kernel_pool_(config.kernel_threads > 0
                       ? std::make_unique<ThreadPool>(config.kernel_threads)
                       : nullptr),
      model_pool_(template_, kernel_pool_.get()) {
  FEDCLUST_REQUIRE(source_ != nullptr, "federation needs a client source");
  FEDCLUST_REQUIRE(source_->num_clients() > 0,
                   "federation needs at least one client");
  FEDCLUST_REQUIRE(model_size_ > 0, "template model has no parameters");
  FEDCLUST_REQUIRE(config_.participation > 0.0 && config_.participation <= 1.0,
                   "participation must be in (0, 1]");
  FEDCLUST_REQUIRE(config_.eval_every > 0, "eval_every must be positive");
  // Metadata sweep only — never materializes a shard, so this stays cheap
  // even for a million-client virtual fleet.
  for (std::size_t i = 0; i < source_->num_clients(); ++i) {
    FEDCLUST_REQUIRE(source_->train_size(i) > 0,
                     "client " << i << " has no training data");
  }
  if (config_.drift.enabled) {
    // The class count comes from one materialized shard (drift rotates
    // labels mod classes); only paid when drift is actually on.
    const std::size_t classes = source_->get(0)->train.spec().classes;
    drift_plan_ = std::make_shared<const robust::DriftPlan>(
        config_.drift, config_.seed, source_->num_clients(), classes);
    drift_fleet_ = std::make_shared<DriftFleet>(source_, drift_plan_);
    source_ = drift_fleet_;
  }
  if (config_.network.enabled) {
    const std::uint64_t net_seed =
        config_.network.seed != 0 ? config_.network.seed : config_.seed;
    net_ = std::make_unique<net::NetworkSimulator>(
        config_.network, source_->num_clients(), net_seed);
  }
  if (config_.compression.enabled) {
    up_codec_ = compress::make_codec(config_.compression.upload,
                                     config_.compression.topk_frac);
    down_codec_ = compress::make_codec(config_.compression.download,
                                       config_.compression.topk_frac);
    layout_.reserve(template_.slices().size());
    for (const auto& slice : template_.slices()) {
      layout_.push_back(slice.size);
    }
    // Codec-aware robust-rule guard: a top-k sparse frame decodes to the
    // reference everywhere outside its kept coordinates, so coordinate-
    // median order statistics over such updates are dominated by
    // reference-filled values — the statistic is biased TOWARD the
    // broadcast instead of toward the honest majority. Norm-clip keeps
    // its semantics (it clips the whole delta, dense or sparse), so fall
    // back to it rather than silently computing a biased statistic.
    // Trimmed mean is NOT guarded anymore: aggregate_weighted dispatches
    // it to robust::sparse_trimmed_mean, which trims per coordinate over
    // the updates that actually shipped that coordinate.
    if (config_.compression.upload == compress::CodecKind::kTopK &&
        config_.robust.rule == robust::AggregationRule::kCoordinateMedian) {
      LOG_WARN("top-k upload codec with "
               << robust::to_string(config_.robust.rule)
               << " biases coordinate order statistics toward the reference; "
                  "falling back to norm_clip");
      config_.robust.rule = robust::AggregationRule::kNormClip;
    }
  }
}

std::uint64_t Federation::encoded_payload_bytes(
    const compress::UpdateCodec& codec, std::size_t num_floats) const {
  const std::size_t reps = num_floats / model_size_;
  if (reps <= 1) return codec.encoded_bytes(num_floats, layout_);
  // Multi-model payload (IFCA's k-model broadcast): the model layout
  // repeats, so every model gets its own per-tensor scales.
  std::vector<std::size_t> repeated;
  repeated.reserve(layout_.size() * reps);
  for (std::size_t r = 0; r < reps; ++r) {
    repeated.insert(repeated.end(), layout_.begin(), layout_.end());
  }
  return codec.encoded_bytes(num_floats, repeated);
}

std::uint64_t Federation::download_wire_bytes(std::size_t num_floats) const {
  if (down_codec_ != nullptr && codec_applies(num_floats)) {
    const std::uint64_t enc = encoded_payload_bytes(*down_codec_, num_floats);
    return net_ ? net::wire_bytes_encoded(enc) : enc;
  }
  return wire_bytes(num_floats);
}

std::uint64_t Federation::upload_wire_bytes(std::size_t num_floats) const {
  if (up_codec_ != nullptr && codec_applies(num_floats)) {
    const std::uint64_t enc = encoded_payload_bytes(*up_codec_, num_floats);
    return net_ ? net::wire_bytes_encoded(enc) : enc;
  }
  return wire_bytes(num_floats);
}

std::uint64_t Federation::codec_download_op_bytes(std::size_t num_floats) const {
  return down_codec_ != nullptr && codec_applies(num_floats)
             ? net::wire_bytes_encoded(
                   encoded_payload_bytes(*down_codec_, num_floats))
             : 0;
}

std::uint64_t Federation::codec_upload_op_bytes(std::size_t num_floats) const {
  return up_codec_ != nullptr && codec_applies(num_floats)
             ? net::wire_bytes_encoded(
                   encoded_payload_bytes(*up_codec_, num_floats))
             : 0;
}

std::vector<float> Federation::download_roundtrip(
    std::span<const float> server_weights) const {
  if (down_codec_ == nullptr) return {};
  FEDCLUST_REQUIRE(server_weights.size() == model_size_,
                   "download_roundtrip expects one whole model");
  std::vector<float> out(server_weights.size());
  compress::roundtrip(*down_codec_, server_weights, {}, layout_, out);
  return out;
}

void Federation::reset_comm() {
  comm_.reset();
  if (net_) net_->reset();
  // A fresh run starts with a clean strike ledger — algorithms executed
  // back-to-back on one federation must not inherit quarantines.
  quarantine_ = robust::Quarantine(config_.robust.validate.max_strikes);
}

void Federation::simulate_network_round(std::size_t round,
                                        const std::vector<net::ClientOp>& ops,
                                        bool reliable) {
  if (net_) net_->run_round(round, ops, reliable);
}

std::shared_ptr<const ClientData> Federation::client_data(
    std::size_t i) const {
  FEDCLUST_REQUIRE(i < source_->num_clients(), "client id out of range");
  return source_->get(i);
}

std::size_t Federation::client_train_size(std::size_t i) const {
  FEDCLUST_REQUIRE(i < source_->num_clients(), "client id out of range");
  return source_->train_size(i);
}

Rng Federation::client_rng(std::size_t client, std::size_t round) const {
  // Key the stream by both ids so no (client, round) pair collides.
  return Rng(config_.seed).split(0x10000 + client).split(round);
}

Rng Federation::round_rng(std::size_t round) const {
  return Rng(config_.seed).split(0x20000).split(round);
}

std::vector<std::size_t> Federation::sample_clients(std::size_t round) const {
  const std::size_t fleet = source_->num_clients();
  const std::size_t want = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::lround(
             config_.participation * static_cast<double>(fleet))));
  std::vector<std::size_t> ids;
  if (want >= fleet) {
    ids.resize(fleet);
    for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  } else {
    Rng rng = round_rng(round);
    ids = rng.sample_without_replacement(fleet, want);
    std::sort(ids.begin(), ids.end());
  }
  // The server no longer solicits quarantined clients. Sampling draws
  // first so honest clients' selection is unperturbed by exclusions.
  if (config_.robust.validate.enabled) {
    std::erase_if(ids,
                  [&](std::size_t c) { return quarantine_.quarantined(c); });
  }
  // Departed slots drop out of sampling the same way — drawn first, then
  // erased, so active clients' draws are unperturbed by churn.
  if (drift_plan_ != nullptr) {
    std::erase_if(
        ids, [&](std::size_t c) { return !drift_plan_->active(round, c); });
  }
  return ids;
}

void Federation::drift_advance(std::size_t round) {
  if (drift_plan_ == nullptr) return;
  if (drift_primed_ && round <= drift_round_) return;
  // Newcomers taking over slots in (previous, round] start with a clean
  // quarantine ledger — strikes belong to the departed client, not the
  // slot.
  const std::size_t from = drift_primed_ ? drift_round_ + 1 : 0;
  for (std::size_t r = from; r <= round; ++r) {
    for (const std::size_t slot : drift_plan_->arrivals_at(r)) {
      quarantine_.clear(slot);
    }
  }
  drift_round_ = round;
  drift_primed_ = true;
  drift_fleet_->set_round(round);
}

void Federation::drift_resume(std::size_t next_round) {
  if (drift_plan_ == nullptr) return;
  drift_round_ = next_round == 0 ? 0 : next_round - 1;
  drift_primed_ = true;
  drift_fleet_->set_round(drift_round_);
}

bool Federation::client_active(std::size_t round, std::size_t client) const {
  return drift_plan_ == nullptr || drift_plan_->active(round, client);
}

bool Federation::client_fails(std::size_t client, std::size_t round) const {
  if (config_.dropout <= 0.0) return false;
  // Independent stream so failures don't perturb training randomness.
  Rng rng = Rng(config_.seed).split(0x30000 + client).split(round);
  return rng.bernoulli(config_.dropout);
}

std::vector<std::size_t> Federation::round_survivors(
    const std::vector<std::size_t>& clients, std::size_t round,
    const LocalTrainConfig& local, bool allow_failures,
    const NetPayloads* net_payloads, std::size_t fault_attempt) {
  // The server never solicits quarantined clients, even on explicit
  // lists (formation re-solicitation goes through here too). Departed
  // drift slots are filtered the same way — a defensive second gate
  // behind sample_clients, since drivers may pass explicit lists.
  std::vector<std::size_t> solicited;
  solicited.reserve(clients.size());
  for (const std::size_t cid : clients) {
    if (config_.robust.validate.enabled && quarantine_.quarantined(cid)) {
      continue;
    }
    if (drift_plan_ != nullptr && !drift_plan_->active(round, cid)) continue;
    solicited.push_back(cid);
  }

  // Fault fate per client — functional over (round, client, attempt), so
  // identical across thread counts. kCrash applies even to reliable
  // rounds (a crashed client cannot answer a formation solicitation);
  // dropout churn remains gated on allow_failures as before.
  const auto fate = [&](std::size_t cid) {
    return config_.faults.enabled
               ? fault_plan_.decide(round, cid, fault_attempt)
               : robust::FaultKind::kNone;
  };

  // Decide churn up front so dropped clients cost no training time.
  std::vector<std::size_t> survivors;
  survivors.reserve(solicited.size());
  for (const std::size_t cid : solicited) {
    if (fate(cid) == robust::FaultKind::kCrash) continue;
    if (!allow_failures || !client_fails(cid, round)) {
      survivors.push_back(cid);
    }
  }

  // With the simulated network on, the round's network fate (drops,
  // retries, stragglers past the deadline) is decided before any
  // training runs: arrival times never depend on real compute, so late
  // or lost clients can simply be skipped. The simulation itself runs
  // single-threaded on the caller and every draw is keyed by
  // (seed, round, client, attempt) — thread count cannot perturb it.
  if (net_ != nullptr) {
    NetPayloads payloads{model_size_, model_size_,
                         net::MessageKind::kModelUpdate};
    if (net_payloads != nullptr) payloads = *net_payloads;
    if (payloads.download_floats > 0 || payloads.upload_floats > 0) {
      std::vector<net::ClientOp> ops;
      ops.reserve(solicited.size());
      for (const std::size_t cid : solicited) {
        FEDCLUST_REQUIRE(cid < source_->num_clients(),
                         "client id out of range");
        const bool churned =
            (allow_failures && client_fails(cid, round)) ||
            fate(cid) == robust::FaultKind::kCrash;
        ops.push_back(net::ClientOp{
            .client = cid,
            .download_floats = payloads.download_floats,
            .upload_floats = payloads.upload_floats,
            .num_samples = source_->train_size(cid),
            .epochs = local.epochs,
            .churned = churned,
            .upload_kind = payloads.upload_kind,
            .download_bytes = codec_download_op_bytes(payloads.download_floats),
            .upload_bytes = codec_upload_op_bytes(payloads.upload_floats)});
      }
      const net::RoundReport report =
          net_->run_round(round, ops, /*reliable=*/!allow_failures);
      std::vector<std::size_t> accepted;
      accepted.reserve(report.accepted);
      for (std::size_t i = 0; i < report.arrivals.size(); ++i) {
        const net::Arrival& a = report.arrivals[i];
        if (a.delivered && !a.late) accepted.push_back(solicited[i]);
      }
      survivors = std::move(accepted);
    }
  }
  return survivors;
}

ClientUpdate Federation::train_one(
    std::size_t cid, std::size_t round,
    const std::function<std::span<const float>(std::size_t)>&
        start_weights_for,
    const LocalTrainConfig& local, std::size_t fault_attempt) const {
  FEDCLUST_REQUIRE(cid < source_->num_clients(), "client id out of range");
  const robust::FaultKind kind =
      config_.faults.enabled ? fault_plan_.decide(round, cid, fault_attempt)
                             : robust::FaultKind::kNone;
  // A stale replay trains from the run's initial weights — the client
  // never saw (or ignored) the current broadcast.
  const std::span<const float> start =
      kind == robust::FaultKind::kStaleReplay
          ? std::span<const float>(initial_weights_)
          : start_weights_for(cid);
  // Materialize the shard for exactly the duration of this client's
  // local work; the shared_ptr keeps it alive under cache eviction.
  const std::shared_ptr<const ClientData> data = source_->get(cid);
  ModelPool::Lease lease = model_pool_.acquire();
  nn::Model& model = *lease;
  model.set_flat_weights(start);
  const float loss =
      train_local(model, data->train, local, client_rng(cid, round));
  std::vector<float> weights = model.flat_weights();
  robust::apply_payload_fault(kind, config_.faults, start, weights,
                              fault_plan_.payload_rng(round, cid));
  return ClientUpdate{cid, std::move(weights), data->train.size(), loss};
}

ClientUpdate Federation::train_dispatch(
    std::size_t client, std::size_t dispatch, std::span<const float> start,
    const LocalTrainConfig* config_override) const {
  LocalTrainConfig local =
      config_override != nullptr ? *config_override : config_.local;
  if (config_.audit) local.audit = true;
  return train_one(
      client, dispatch,
      [start](std::size_t) { return start; }, local, /*fault_attempt=*/0);
}

Federation::ScreenedBatch Federation::transport_and_screen(
    std::vector<ClientUpdate> updates,
    const std::vector<std::span<const float>>& starts) {
  FEDCLUST_REQUIRE(updates.size() == starts.size(),
                   "one broadcast reference per update");
  ScreenedBatch out;
  out.accepted.assign(updates.size(), 1);

  if (up_codec_ != nullptr && !config_.robust.validate.enabled) {
    // Same transport as the synchronous path: the aggregator only ever
    // sees decode(encode(update)) against the broadcast it came from.
    pool_.parallel_for(0, updates.size(), [&](std::size_t i) {
      FEDCLUST_REQUIRE(updates[i].weights.size() == model_size_,
                       "async transport expects whole-model updates");
      std::vector<float> rt(updates[i].weights.size());
      compress::roundtrip(*up_codec_, updates[i].weights, starts[i], layout_,
                          rt);
      updates[i].weights = std::move(rt);
    });
  } else if (config_.robust.validate.enabled && !updates.empty()) {
    std::vector<std::size_t> ids;
    ids.reserve(updates.size());
    for (const ClientUpdate& u : updates) ids.push_back(u.client_id);
    std::vector<robust::Verdict> verdicts;
    if (up_codec_ != nullptr) {
      std::vector<std::vector<std::uint8_t>> frames(updates.size());
      pool_.parallel_for(0, updates.size(), [&](std::size_t i) {
        frames[i] = up_codec_->encode(updates[i].weights, starts[i], layout_);
      });
      std::vector<std::span<const std::uint8_t>> frame_spans;
      frame_spans.reserve(frames.size());
      for (const auto& f : frames) frame_spans.emplace_back(f);
      std::vector<std::vector<float>> decoded;
      verdicts = robust::screen_encoded_updates(
          frame_spans, starts, ids, model_size_, *up_codec_, layout_,
          config_.robust.validate, &decoded);
      for (std::size_t i = 0; i < updates.size(); ++i) {
        if (verdicts[i].accepted()) updates[i].weights = std::move(decoded[i]);
      }
    } else {
      std::vector<std::span<const float>> payload_spans;
      payload_spans.reserve(updates.size());
      for (const ClientUpdate& u : updates) {
        payload_spans.emplace_back(u.weights);
      }
      verdicts = robust::screen_updates(payload_spans, starts, ids,
                                        model_size_, config_.robust.validate);
    }
    for (std::size_t i = 0; i < updates.size(); ++i) {
      if (!verdicts[i].accepted()) {
        out.accepted[i] = 0;
        quarantine_.strike(verdicts[i].client);
      }
    }
  }

  if (config_.audit) {
    for (std::size_t i = 0; i < updates.size(); ++i) {
      if (out.accepted[i] == 0) continue;
      const std::string context = "dispatch update of client " +
                                  std::to_string(updates[i].client_id);
      check::assert_all_finite(updates[i].weights, context.c_str());
      FEDCLUST_CHECK(std::isfinite(updates[i].train_loss),
                     context << ": non-finite train loss "
                             << updates[i].train_loss);
    }
  }
  out.updates = std::move(updates);
  return out;
}

std::vector<ClientUpdate> Federation::train_clients(
    const std::vector<std::size_t>& clients, std::size_t round,
    const std::function<std::span<const float>(std::size_t)>&
        start_weights_for,
    const LocalTrainConfig* config_override, bool allow_failures,
    const NetPayloads* net_payloads, std::size_t fault_attempt) {
  LocalTrainConfig local =
      config_override != nullptr ? *config_override : config_.local;
  if (config_.audit) local.audit = true;

  // Every training round advances the drift clock (monotone no-op once
  // a driver already advanced it for newcomer admission).
  drift_advance(round);

  const std::vector<std::size_t> survivors = round_survivors(
      clients, round, local, allow_failures, net_payloads, fault_attempt);

  // Codec transport applies only to whole-model transfers this round
  // actually makes: the download leg when the broadcast is one or more
  // full models (every client then trains from decode(encode(server
  // weights))), the upload leg when the update payload is the full model
  // (sub-model side channels like FedClust's formation slice ship raw).
  NetPayloads payloads{model_size_, model_size_,
                       net::MessageKind::kModelUpdate};
  if (net_payloads != nullptr) payloads = *net_payloads;
  const compress::UpdateCodec* down =
      down_codec_ != nullptr && codec_applies(payloads.download_floats)
          ? down_codec_.get()
          : nullptr;
  const bool transport_uploads =
      up_codec_ != nullptr && payloads.upload_floats == model_size_;
  const std::function<std::span<const float>(std::size_t)> effective_start =
      downloaded_starts(down, layout_, model_size_, survivors,
                        start_weights_for);

  std::vector<ClientUpdate> updates(survivors.size());
  pool_.parallel_for(0, survivors.size(), [&](std::size_t slot) {
    ClientUpdate u = train_one(survivors[slot], round, effective_start, local,
                               fault_attempt);
    // Without server-side screening the upload transport is simulated
    // right here: the aggregator only ever sees decode(encode(update)).
    // (With screening on, the encoded frames go through the codec
    // envelope + decode-then-screen pipeline below instead.)
    if (transport_uploads && !config_.robust.validate.enabled) {
      std::vector<float> rt(u.weights.size());
      compress::roundtrip(*up_codec_, u.weights,
                          effective_start(u.client_id), layout_, rt);
      u.weights = std::move(rt);
    }
    updates[slot] = std::move(u);
  });

  // Server-side screening: every arrived update is validated against the
  // weights the server actually served this client. Rejections are
  // metered (the bytes did cross the wire), charged as strikes, and
  // dropped from the result.
  if (config_.robust.validate.enabled && !updates.empty()) {
    std::vector<std::span<const float>> start_spans;
    std::vector<std::size_t> ids;
    start_spans.reserve(updates.size());
    ids.reserve(updates.size());
    for (const ClientUpdate& u : updates) {
      start_spans.push_back(effective_start(u.client_id));
      ids.push_back(u.client_id);
    }
    std::vector<robust::Verdict> verdicts;
    std::vector<std::vector<float>> decoded;
    if (transport_uploads) {
      // Decode-then-screen: each client's frame is validated against the
      // codec envelope first (failures strike as kCodecEnvelope), then
      // the decoded floats run the unchanged shape/finite/norm pipeline.
      std::vector<std::vector<std::uint8_t>> frames(updates.size());
      pool_.parallel_for(0, updates.size(), [&](std::size_t i) {
        frames[i] = up_codec_->encode(updates[i].weights, start_spans[i],
                                      layout_);
      });
      std::vector<std::span<const std::uint8_t>> frame_spans;
      frame_spans.reserve(frames.size());
      for (const auto& f : frames) frame_spans.emplace_back(f);
      verdicts = robust::screen_encoded_updates(
          frame_spans, start_spans, ids, model_size_, *up_codec_, layout_,
          config_.robust.validate, &decoded);
    } else {
      std::vector<std::span<const float>> payload_spans;
      payload_spans.reserve(updates.size());
      for (const ClientUpdate& u : updates) payload_spans.emplace_back(u.weights);
      verdicts = robust::screen_updates(payload_spans, start_spans, ids,
                                        model_size_, config_.robust.validate);
    }
    std::vector<ClientUpdate> kept;
    kept.reserve(updates.size());
    for (std::size_t i = 0; i < updates.size(); ++i) {
      if (verdicts[i].accepted()) {
        if (transport_uploads) {
          // The aggregator keeps what survived the wire, not the raw
          // client weights.
          updates[i].weights = std::move(decoded[i]);
        }
        kept.push_back(std::move(updates[i]));
      } else {
        // The rejected bytes did cross the wire; meter them here since
        // the caller never sees the update (skipped when the caller
        // opened no metering round, e.g. direct train_clients tests).
        if (payloads.upload_floats > 0 && comm_.round_count() > 0) {
          meter_upload(verdicts[i].client, payloads.upload_floats);
        }
        quarantine_.strike(verdicts[i].client);
      }
    }
    updates = std::move(kept);
  }

  if (config_.audit) {
    // Sweep after the pool joins so a violation throws on the caller's
    // thread with a precise attribution.
    for (const ClientUpdate& u : updates) {
      const std::string context = "round " + std::to_string(round) +
                                  " client " + std::to_string(u.client_id) +
                                  " update weights";
      check::assert_all_finite(u.weights, context.c_str());
      FEDCLUST_CHECK(std::isfinite(u.train_loss),
                     context << ": non-finite train loss " << u.train_loss);
    }
  }
  return updates;
}

Federation::FoldResult Federation::train_clients_folded(
    const std::vector<std::size_t>& clients, std::size_t round,
    const std::function<std::span<const float>(std::size_t)>&
        start_weights_for,
    const net::EdgeTopology& topology, const LocalTrainConfig* config_override,
    const NetPayloads* net_payloads) {
  FoldResult out;

  // Robust rules and server-side screening both need the whole cohort's
  // updates at once — gather at root (see the header's memory note).
  if (config_.robust.rule != robust::AggregationRule::kWeightedMean ||
      config_.robust.validate.enabled) {
    std::vector<ClientUpdate> updates =
        train_clients(clients, round, start_weights_for, config_override,
                      /*allow_failures=*/true, net_payloads);
    out.gathered = true;
    if (updates.empty()) return out;
    double loss_sum = 0.0;
    out.contributors.reserve(updates.size());
    for (const ClientUpdate& u : updates) {
      out.contributors.push_back(u.client_id);
      loss_sum += u.train_loss;
    }
    out.mean_train_loss = loss_sum / static_cast<double>(updates.size());
    out.weights = aggregate(updates);
    return out;
  }

  LocalTrainConfig local =
      config_override != nullptr ? *config_override : config_.local;
  if (config_.audit) local.audit = true;

  drift_advance(round);

  const std::vector<std::size_t> survivors =
      round_survivors(clients, round, local, /*allow_failures=*/true,
                      net_payloads, /*fault_attempt=*/0);
  out.contributors = survivors;
  if (survivors.empty()) return out;
  const std::size_t cohort = survivors.size();

  // Same codec transport gates as train_clients; the upload round trip
  // happens inside the batch lambda so the fold only ever accumulates
  // what survived the wire.
  NetPayloads payloads{model_size_, model_size_,
                       net::MessageKind::kModelUpdate};
  if (net_payloads != nullptr) payloads = *net_payloads;
  const compress::UpdateCodec* down =
      down_codec_ != nullptr && codec_applies(payloads.download_floats)
          ? down_codec_.get()
          : nullptr;
  const bool transport_uploads =
      up_codec_ != nullptr && payloads.upload_floats == model_size_;
  const std::function<std::span<const float>(std::size_t)> effective_start =
      downloaded_starts(down, layout_, model_size_, survivors,
                        start_weights_for);

  // FedAvg coefficients over the WHOLE cohort, from the cheap train_size
  // metadata — value-identical to aggregation_coefficients over the flat
  // update list (ClientUpdate::num_samples is the same train size).
  std::vector<double> coeff(cohort);
  double total = 0.0;
  for (std::size_t i = 0; i < cohort; ++i) {
    const std::size_t n = source_->train_size(survivors[i]);
    FEDCLUST_REQUIRE(n > 0, "update with zero samples");
    total += static_cast<double>(n);
  }
  for (std::size_t i = 0; i < cohort; ++i) {
    coeff[i] =
        static_cast<double>(source_->train_size(survivors[i])) / total;
  }

  // The shared slot-ordered double accumulator: every edge folds its
  // contiguous slot range into it in ascending slot order, in batches
  // bounded by the training pool's width — so resident updates are
  // O(batch × model), never O(cohort × model). Per element, the fold
  // executes the exact operation sequence of the one-shot
  // weighted_accumulate kernel (batch boundaries only park the
  // accumulator in memory), which is why ANY edge count reproduces flat
  // aggregation bit-for-bit.
  std::vector<double> acc(model_size_, 0.0);
  const std::size_t batch_cap = std::max<std::size_t>(2 * pool_.size(), 8);
  const std::size_t edges = topology.clamped_edges(cohort);
  const ops::KernelTable* kp = &ops::kernels();
  double loss_sum = 0.0;
  for (std::size_t e = 0; e < edges; ++e) {
    const auto [edge_begin, edge_end] = topology.slot_range(e, cohort);
    for (std::size_t bb = edge_begin; bb < edge_end; bb += batch_cap) {
      const std::size_t be = std::min(edge_end, bb + batch_cap);
      std::vector<ClientUpdate> batch(be - bb);
      pool_.parallel_for(0, be - bb, [&](std::size_t j) {
        batch[j] = train_one(survivors[bb + j], round, effective_start, local,
                             /*fault_attempt=*/0);
        if (transport_uploads) {
          std::vector<float> rt(batch[j].weights.size());
          compress::roundtrip(*up_codec_, batch[j].weights,
                              effective_start(batch[j].client_id), layout_,
                              rt);
          batch[j].weights = std::move(rt);
        }
      });
      std::vector<const float*> srcs(batch.size());
      for (std::size_t j = 0; j < batch.size(); ++j) {
        if (config_.audit) {
          const std::string context =
              "round " + std::to_string(round) + " client " +
              std::to_string(batch[j].client_id) + " update weights";
          check::assert_all_finite(batch[j].weights, context.c_str());
          FEDCLUST_CHECK(std::isfinite(batch[j].train_loss),
                         context << ": non-finite train loss "
                                 << batch[j].train_loss);
        }
        loss_sum += batch[j].train_loss;
        srcs[j] = batch[j].weights.data();
      }
      chunked_reduce(model_size_, aggregation_pool(),
                     [&](std::size_t begin, std::size_t end) {
                       kp->weighted_accumulate_partial(
                           srcs.data(), coeff.data() + bb, batch.size(),
                           acc.data(), begin, end);
                     });
    }
  }
  out.mean_train_loss = loss_sum / static_cast<double>(cohort);

  // Finalize: the double→float cast is the same IEEE round-to-nearest
  // the one-shot kernel's narrow/cast performs.
  out.weights.resize(model_size_);
  for (std::size_t i = 0; i < model_size_; ++i) {
    out.weights[i] = static_cast<float>(acc[i]);
  }
  if (config_.audit) {
    check::assert_all_finite(out.weights, "folded aggregation output");
  }
  return out;
}

EvalResult Federation::evaluate_client(std::size_t client,
                                       std::span<const float> weights) const {
  const std::shared_ptr<const ClientData> data = client_data(client);
  FEDCLUST_REQUIRE(!data->test.empty(),
                   "client " << client << " has no test data");
  ModelPool::Lease lease = model_pool_.acquire();
  lease->set_flat_weights(weights);
  return evaluate(*lease, data->test);
}

double Federation::client_train_loss(std::size_t client,
                                     std::span<const float> weights) const {
  const std::shared_ptr<const ClientData> data = client_data(client);
  ModelPool::Lease lease = model_pool_.acquire();
  lease->set_flat_weights(weights);
  return evaluate(*lease, data->train).loss;
}

AccuracySummary Federation::evaluate_personalized(
    const std::function<std::span<const float>(std::size_t)>& weights_for)
    const {
  AccuracySummary out;
  const std::size_t n = source_->num_clients();
  if (drift_plan_ != nullptr) {
    // Departed slots score NaN and are excluded from the mean/std, so a
    // static baseline's degradation under drift is attributable to the
    // drift itself, never to ghost evaluations of clients that left.
    out.per_client.assign(n, std::numeric_limits<double>::quiet_NaN());
    std::vector<std::size_t> alive;
    alive.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (drift_plan_->active(drift_round_, i)) alive.push_back(i);
    }
    if (alive.empty()) return out;
    pool_.parallel_for(0, alive.size(), [&](std::size_t a) {
      out.per_client[alive[a]] =
          evaluate_client(alive[a], weights_for(alive[a])).accuracy;
    });
    double sum = 0.0;
    for (const std::size_t i : alive) sum += out.per_client[i];
    out.mean = sum / static_cast<double>(alive.size());
    double var = 0.0;
    for (const std::size_t i : alive) {
      var += (out.per_client[i] - out.mean) * (out.per_client[i] - out.mean);
    }
    out.std = std::sqrt(var / static_cast<double>(alive.size()));
    return out;
  }
  out.per_client.assign(n, 0.0);
  pool_.parallel_for(0, n, [&](std::size_t i) {
    out.per_client[i] = evaluate_client(i, weights_for(i)).accuracy;
  });
  double sum = 0.0;
  for (double a : out.per_client) sum += a;
  out.mean = sum / static_cast<double>(out.per_client.size());
  double var = 0.0;
  for (double a : out.per_client) var += (a - out.mean) * (a - out.mean);
  out.std = std::sqrt(var / static_cast<double>(out.per_client.size()));
  return out;
}

AccuracySummary Federation::evaluate_cohort(
    const std::vector<std::size_t>& clients,
    const std::function<std::span<const float>(std::size_t)>& weights_for)
    const {
  AccuracySummary out;
  if (clients.empty()) return out;
  std::vector<double> accs(clients.size());
  pool_.parallel_for(0, clients.size(), [&](std::size_t i) {
    accs[i] = evaluate_client(clients[i], weights_for(clients[i])).accuracy;
  });
  StreamingMoments moments;
  for (const double a : accs) moments.add(a);
  out.mean = moments.mean();
  out.std = moments.std();
  return out;
}

std::vector<float> weighted_average(const std::vector<ClientUpdate>& updates,
                                    ThreadPool* pool) {
  // Guard before touching updates.front(): averaging nothing is a caller
  // bug (e.g. aggregating a round in which every client dropped out or
  // straggled past the deadline) and must fail loudly, not read past the
  // end of an empty vector.
  FEDCLUST_REQUIRE(!updates.empty(),
                   "weighted_average over zero updates — no client update "
                   "survived the round; callers must skip aggregation for "
                   "empty rounds");
  return weighted_average_with(updates, aggregation_coefficients(updates),
                               pool);
}

std::vector<float> weighted_average_with(
    const std::vector<ClientUpdate>& updates,
    const std::vector<double>& coefficients, ThreadPool* pool) {
  FEDCLUST_REQUIRE(!updates.empty(),
                   "weighted_average over zero updates — no client update "
                   "survived the round; callers must skip aggregation for "
                   "empty rounds");
  FEDCLUST_REQUIRE(coefficients.size() == updates.size(),
                   "one mixing coefficient per update");
  const std::size_t dim = updates.front().weights.size();
  const std::size_t n = updates.size();
  for (const ClientUpdate& u : updates) {
    FEDCLUST_REQUIRE(u.weights.size() == dim,
                     "update size mismatch in weighted_average");
  }
  const std::vector<double>& coeff = coefficients;

  // Fused single pass through the dispatched weighted_accumulate kernel:
  // each output element is reduced across updates in double and written
  // once — no dim-sized double temporary, one sweep over every update's
  // memory.
  std::vector<float> out(dim);
  std::vector<const float*> srcs(n);
  for (std::size_t u = 0; u < n; ++u) srcs[u] = updates[u].weights.data();
  const ops::KernelTable* kp = &ops::kernels();
  chunked_reduce(dim, pool, [&](std::size_t begin, std::size_t end) {
    kp->weighted_accumulate(srcs.data(), coeff.data(), n, out.data(), begin,
                            end);
  });
  return out;
}

std::vector<double> aggregation_coefficients(
    const std::vector<ClientUpdate>& updates) {
  double total = 0.0;
  for (const ClientUpdate& u : updates) {
    FEDCLUST_REQUIRE(u.num_samples > 0, "update with zero samples");
    total += static_cast<double>(u.num_samples);
  }
  std::vector<double> coeff(updates.size());
  for (std::size_t u = 0; u < updates.size(); ++u) {
    coeff[u] = static_cast<double>(updates[u].num_samples) / total;
  }
  return coeff;
}

std::vector<float> Federation::aggregate(
    const std::vector<ClientUpdate>& updates,
    std::span<const float> reference) {
  return aggregate_weighted(updates, aggregation_coefficients(updates),
                            reference);
}

std::vector<float> Federation::aggregate_weighted(
    const std::vector<ClientUpdate>& updates,
    const std::vector<double>& coefficients, std::span<const float> reference) {
  FEDCLUST_REQUIRE(coefficients.size() == updates.size(),
                   "one mixing coefficient per update");
  // Sign-SGD pairs with its own aggregation rule: a decoded sign update
  // is reference ± per-tensor scale, and averaging those directly wastes
  // the 1-bit structure. Per coordinate the clients VOTE — the result
  // moves from the reference in the majority direction by the weighted
  // mean magnitude. The vote needs the reference as the clients saw it
  // (decoded through the download codec), so both sides of the ± agree
  // bit-for-bit. Only the plain weighted-mean rule is replaced; robust
  // rules keep their order-statistic semantics over the decoded values.
  if (config_.robust.rule == robust::AggregationRule::kWeightedMean &&
      up_codec_ != nullptr &&
      up_codec_->kind() == compress::CodecKind::kSignSgd &&
      !reference.empty() && !updates.empty()) {
    FEDCLUST_REQUIRE(reference.size() == model_size_,
                     "sign-SGD vote needs the full pre-round model");
    for (const ClientUpdate& u : updates) {
      FEDCLUST_REQUIRE(u.weights.size() == model_size_,
                       "update size mismatch in sign-SGD vote");
    }
    const std::vector<float> ref_eff = download_roundtrip(reference);
    const std::vector<double>& coeff = coefficients;
    std::vector<const float*> srcs(updates.size());
    for (std::size_t u = 0; u < updates.size(); ++u) {
      srcs[u] = updates[u].weights.data();
    }
    std::vector<float> out(model_size_);
    compress::signsgd_majority_vote(srcs.data(), coeff.data(), updates.size(),
                                    ref_eff.data(), out.data(), model_size_);
    if (config_.audit) {
      // The vote's output anchors on the reference, which need not lie
      // in the updates' convex envelope — check finiteness only (like
      // the robust rules below).
      check::assert_all_finite(out, "sign-SGD majority-vote output");
    }
    return out;
  }
  if (config_.robust.rule == robust::AggregationRule::kWeightedMean) {
    std::vector<float> out =
        weighted_average_with(updates, coefficients, aggregation_pool());
    if (config_.audit) {
      std::vector<std::span<const float>> inputs;
      inputs.reserve(updates.size());
      for (const ClientUpdate& u : updates) inputs.emplace_back(u.weights);
      check::audit_aggregation(inputs, coefficients, out);
    }
    return out;
  }
  std::vector<std::span<const float>> inputs;
  inputs.reserve(updates.size());
  for (const ClientUpdate& u : updates) inputs.emplace_back(u.weights);
  // Sparse-aware trimmed mean over top-k frames: a decoded top-k update
  // equals the broadcast in every coordinate it did not ship, so the
  // trim runs per coordinate over the updates that actually shipped it
  // (anything else drowns the order statistic in reference copies — the
  // bias the old norm-clip fallback guarded against). The fill must be
  // the broadcast AS THE CLIENTS SAW IT, i.e. download-codec decoded,
  // so "not shipped" detection is bit-exact.
  if (config_.robust.rule == robust::AggregationRule::kTrimmedMean &&
      up_codec_ != nullptr &&
      up_codec_->kind() == compress::CodecKind::kTopK &&
      !reference.empty() && !updates.empty()) {
    FEDCLUST_REQUIRE(reference.size() == model_size_,
                     "sparse trimmed mean needs the full pre-round model");
    bool whole_models = true;
    for (const ClientUpdate& u : updates) {
      whole_models = whole_models && u.weights.size() == model_size_;
    }
    if (whole_models) {
      const std::vector<float> ref_rt = download_roundtrip(reference);
      const std::span<const float> fill =
          ref_rt.empty() ? reference : std::span<const float>(ref_rt);
      std::vector<float> out = robust::sparse_trimmed_mean(
          inputs, config_.robust.trim_frac, fill, aggregation_pool());
      if (config_.audit) {
        check::assert_all_finite(out, "sparse trimmed-mean output");
      }
      return out;
    }
  }
  std::vector<float> out = robust::robust_aggregate(
      inputs, coefficients, config_.robust.rule, config_.robust, reference,
      aggregation_pool());
  if (config_.audit) {
    // The convex-envelope audit is specific to the weighted mean (a
    // norm-clipped output lives in the hull of {reference, inputs}, not
    // of the inputs alone); for robust rules check finiteness only.
    check::assert_all_finite(out, "robust aggregation output");
  }
  return out;
}

}  // namespace fedclust::fl
