// Shared value types of the federated-learning engine.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "nn/optimizer.hpp"

namespace fedclust::fl {

/// One client's private data: a train split and a local test split whose
/// label distribution mirrors the train split (the Table-I evaluation
/// protocol).
struct ClientData {
  data::Dataset train;
  data::Dataset test;
};

/// Local training hyperparameters applied at every client.
struct LocalTrainConfig {
  std::size_t epochs = 1;
  std::size_t batch_size = 32;
  nn::SgdConfig sgd{};
  /// Runtime auditing inside train_local: per-step finite losses and
  /// per-epoch finite-value sweeps over weights and gradients. Set
  /// automatically by the engine when FederationConfig::audit is on.
  bool audit = false;
};

/// What a client sends back after local training.
struct ClientUpdate {
  std::size_t client_id = 0;
  std::vector<float> weights;   ///< full post-training weight vector
  std::size_t num_samples = 0;  ///< local train set size (FedAvg weighting)
  float train_loss = 0.0f;      ///< mean loss over the last local epoch
};

/// Loss/accuracy pair from evaluating a model on one dataset.
struct EvalResult {
  double loss = 0.0;
  double accuracy = 0.0;
};

}  // namespace fedclust::fl
