// Local training and evaluation loops.
//
// Every FL algorithm delegates client-side work to these two functions:
// `train_local` runs E epochs of mini-batch SGD on one client's data and
// `evaluate` measures loss/accuracy on a dataset in inference mode.
#pragma once

#include "fl/types.hpp"
#include "nn/loss.hpp"
#include "utils/rng.hpp"

namespace fedclust::fl {

/// Trains `model` in place on `dataset` for config.epochs of shuffled
/// mini-batches; returns the mean training loss of the final epoch.
/// `rng` drives batch shuffling (hand each client an independent stream).
/// When config.sgd.prox_mu > 0 the proximal reference is the model's
/// weights at entry (FedProx semantics).
float train_local(nn::Model& model, const data::Dataset& dataset,
                  const LocalTrainConfig& config, Rng rng);

/// Loss and accuracy of `model` on `dataset`, evaluated in inference mode
/// in batches of `batch_size`.
EvalResult evaluate(nn::Model& model, const data::Dataset& dataset,
                    std::size_t batch_size = 256);

}  // namespace fedclust::fl
