// Uniform interface every FL algorithm (baselines and FedClust) exposes
// to the bench harnesses.
#pragma once

#include <memory>
#include <string>

#include "fl/metrics.hpp"

namespace fedclust::fl {

class Algorithm {
 public:
  virtual ~Algorithm() = default;

  /// Display name used in tables ("FedAvg", "FedClust", ...).
  virtual std::string name() const = 0;

  /// Executes `rounds` communication rounds against the federation.
  /// Implementations reset the federation's CommMeter at entry, meter all
  /// traffic they generate, and evaluate per federation.config().eval_every.
  virtual RunResult run(Federation& federation, std::size_t rounds) = 0;
};

}  // namespace fedclust::fl
