#include "fl/model_pool.hpp"

namespace fedclust::fl {

ModelPool::ModelPool(const nn::Model& template_model, ThreadPool* kernel_pool)
    : template_(&template_model), kernel_pool_(kernel_pool) {}

ModelPool::Lease ModelPool::acquire() {
  std::unique_ptr<nn::Model> model;
  {
    std::lock_guard lock(mutex_);
    if (!free_.empty()) {
      model = std::move(free_.back());
      free_.pop_back();
    } else {
      ++created_;
    }
  }
  // Clone outside the lock — it is the expensive path and only runs while
  // the pool is still warming up to the round's concurrency.
  if (model == nullptr) {
    model = std::make_unique<nn::Model>(template_->clone());
  }
  model->set_thread_pool(kernel_pool_);
  return Lease(this, std::move(model));
}

void ModelPool::release(std::unique_ptr<nn::Model> model) {
  std::lock_guard lock(mutex_);
  free_.push_back(std::move(model));
}

std::size_t ModelPool::idle() const {
  std::lock_guard lock(mutex_);
  return free_.size();
}

std::size_t ModelPool::created() const {
  std::lock_guard lock(mutex_);
  return created_;
}

}  // namespace fedclust::fl
