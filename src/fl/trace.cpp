#include "fl/trace.hpp"

#include <fstream>
#include <sstream>

#include "utils/error.hpp"

namespace fedclust::fl {
namespace {

constexpr const char* kRoundsHeader =
    "algorithm,round,acc_mean,acc_std,train_loss,cum_upload_bytes,"
    "cum_download_bytes,num_clusters,sim_seconds\n";

void append_rounds(std::ostringstream& oss, const RunResult& result) {
  for (const RoundMetrics& r : result.rounds) {
    oss << result.algorithm << ',' << r.round << ',' << r.acc_mean << ','
        << r.acc_std << ',' << r.train_loss << ',' << r.cum_upload << ','
        << r.cum_download << ',' << r.num_clusters << ',' << r.sim_seconds
        << '\n';
  }
}

}  // namespace

std::string rounds_to_csv(const RunResult& result) {
  std::ostringstream oss;
  oss << kRoundsHeader;
  append_rounds(oss, result);
  return oss.str();
}

std::string rounds_to_csv(const std::vector<RunResult>& results) {
  std::ostringstream oss;
  oss << kRoundsHeader;
  for (const RunResult& r : results) append_rounds(oss, r);
  return oss.str();
}

std::string clients_to_csv(const RunResult& result) {
  FEDCLUST_REQUIRE(result.final_accuracy.per_client.size() ==
                       result.cluster_labels.size(),
                   "per-client accuracy and cluster labels disagree");
  std::ostringstream oss;
  oss << "algorithm,client,cluster,accuracy\n";
  for (std::size_t c = 0; c < result.cluster_labels.size(); ++c) {
    oss << result.algorithm << ',' << c << ',' << result.cluster_labels[c]
        << ',' << result.final_accuracy.per_client[c] << '\n';
  }
  return oss.str();
}

void write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  FEDCLUST_CHECK(out.good(), "cannot open " << path << " for writing");
  out << content;
  FEDCLUST_CHECK(out.good(), "write to " << path << " failed");
}

}  // namespace fedclust::fl
