// Per-cluster drift detection from accuracy trajectories.
//
// The detector keeps a trailing window of each cluster's mean client
// accuracy at the run's eval cadence and runs a windowed mean-shift
// test: split the window in half, compare the older half's mean against
// the newer half's. A drop beyond `drop_threshold` is a breach; a
// breach sustained for `hysteresis` consecutive observations raises an
// alarm (one noisy eval never triggers a re-clustering). After a
// recovery the detector is reset and holds off for `cooldown`
// observations so the re-formed partition gets a clean baseline before
// being judged.
//
// All state is a pure function of the observed accuracy series, and the
// windows/streaks serialize into robust::DriftSnapshot, so a dynamic
// run resumes bit-identically — including which round the next alarm
// fires.
#pragma once

#include <cstdint>
#include <vector>

#include "robust/checkpoint.hpp"

namespace fedclust::fl {

struct DriftDetectorConfig {
  /// Trailing observations kept per cluster; the mean-shift test splits
  /// this window in half, so detection needs `window` evals of history.
  std::size_t window = 6;
  /// Accuracy drop (older-half mean minus newer-half mean) that counts
  /// as a breach.
  double drop_threshold = 0.05;
  /// Consecutive breaching observations required before alarming.
  std::size_t hysteresis = 2;
  /// Observations skipped after a reset before testing resumes.
  std::size_t cooldown = 2;
};

/// One alarmed cluster from an observe() call.
struct DriftAlarm {
  std::size_t round = 0;
  std::size_t cluster = 0;
  double drop = 0.0;  ///< mean-shift magnitude that tripped the alarm
};

/// Quarantine-style event ledger of everything the drift machinery did.
enum class DriftLogKind : std::uint8_t {
  kBreach = 0,  ///< one window breached the threshold (cluster, drop)
  kAlarm,       ///< hysteresis confirmed the breach (cluster, drop)
  kRecovery,    ///< a re-clustering was applied (new cluster count)
  kArrival,     ///< a newcomer joined (slot, assigned cluster)
  kDeparture,   ///< a client left (slot)
};

const char* to_string(DriftLogKind kind);

struct DriftLogEntry {
  std::size_t round = 0;
  DriftLogKind kind = DriftLogKind::kBreach;
  std::size_t subject = 0;  ///< cluster or slot, per kind
  double value = 0.0;       ///< drop magnitude / cluster count, per kind
};

class DriftDetector {
 public:
  explicit DriftDetector(DriftDetectorConfig config);

  const DriftDetectorConfig& config() const { return cfg_; }

  /// (Re)initializes per-cluster state for `clusters` clusters without
  /// touching the event log.
  void start(std::size_t clusters);

  /// Feeds one eval's per-cluster mean accuracies (NaN entries — empty
  /// or fully-departed clusters — are skipped: their windows freeze).
  /// Returns the clusters whose sustained mean-shift crossed the
  /// threshold this observation.
  std::vector<DriftAlarm> observe(std::size_t round,
                                  const std::vector<double>& cluster_acc);

  /// Post-recovery reset: new per-cluster windows (the partition just
  /// changed shape) plus the configured cooldown. Logs kRecovery.
  void reset(std::size_t round, std::size_t clusters);

  /// Largest mean-shift drop seen at the latest observe() (0 while the
  /// windows are still filling) — surfaced as RoundMetrics::drift_score.
  double last_score() const { return last_score_; }

  /// Appends an external event (arrival/departure) to the ledger.
  void note(std::size_t round, DriftLogKind kind, std::size_t subject,
            double value = 0.0);

  const std::vector<DriftLogEntry>& log() const { return log_; }

  /// Checkpoint round-trip. The event log is diagnostics, not state,
  /// and is deliberately not carried.
  robust::DriftSnapshot snapshot(std::size_t recoveries) const;
  void restore(const robust::DriftSnapshot& snap);

 private:
  DriftDetectorConfig cfg_;
  std::vector<std::vector<double>> windows_;  // per cluster, trailing
  std::vector<std::size_t> streaks_;          // consecutive breaches
  std::size_t cooldown_left_ = 0;
  double last_score_ = 0.0;
  std::vector<DriftLogEntry> log_;
};

}  // namespace fedclust::fl
