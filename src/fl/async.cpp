#include "fl/async.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "robust/fault.hpp"
#include "utils/error.hpp"

namespace fedclust::fl {

double staleness_weight(StalenessKind kind, double exponent,
                        std::size_t staleness) {
  if (kind == StalenessKind::kConstant || staleness == 0) return 1.0;
  return 1.0 / std::pow(1.0 + static_cast<double>(staleness), exponent);
}

std::vector<float> decay_toward(std::span<const float> current,
                                std::span<const float> target, double lr) {
  FEDCLUST_REQUIRE(current.size() == target.size(),
                   "decay_toward: size mismatch");
  FEDCLUST_REQUIRE(lr > 0.0 && lr <= 1.0, "decay_toward: lr must be in (0, 1]");
  std::vector<float> out(current.size());
  for (std::size_t i = 0; i < current.size(); ++i) {
    out[i] = static_cast<float>(
        static_cast<double>(current[i]) +
        lr * (static_cast<double>(target[i]) - static_cast<double>(current[i])));
  }
  return out;
}

std::span<const float> AsyncAdapter::cluster_model(std::size_t cluster) const {
  (void)cluster;
  FEDCLUST_CHECK(false, name() << " does not expose async cluster models");
  return {};
}

void AsyncAdapter::set_cluster_model(std::size_t cluster,
                                     std::vector<float> weights) {
  (void)cluster;
  (void)weights;
  FEDCLUST_CHECK(false, name() << " does not expose async cluster models");
}

void AsyncAdapter::save_state(robust::RunCheckpoint& checkpoint) const {
  (void)checkpoint;
  FEDCLUST_CHECK(false, name() << " does not support async checkpoints");
}

void AsyncAdapter::restore_state(Federation& federation,
                                 const robust::RunCheckpoint& checkpoint) {
  (void)federation;
  (void)checkpoint;
  FEDCLUST_CHECK(false, name() << " does not support async checkpoints");
}

RunResult run_synchronized(Federation& federation, AsyncAdapter& adapter,
                           std::size_t rounds) {
  federation.reset_comm();
  RunResult result;
  result.algorithm = adapter.name();
  const std::size_t first = adapter.begin(federation, result);
  FEDCLUST_REQUIRE(rounds > first,
                   adapter.name() << " needs more than " << first
                                  << " rounds (formation included)");
  for (std::size_t round = first; round < rounds; ++round) {
    federation.comm().begin_round(round);
    const double loss = adapter.sync_round(federation, round);
    const bool last = round + 1 == rounds;
    if (last || (round + 1) % federation.config().eval_every == 0) {
      const AccuracySummary acc = adapter.evaluate(federation);
      result.rounds.push_back(make_round_metrics(round, acc, loss, federation,
                                                 adapter.num_clusters(),
                                                 adapter.fingerprint()));
      if (last) result.final_accuracy = acc;
    }
  }
  adapter.finish(result);
  return result;
}

namespace {

/// One outstanding (or arrived-but-unflushed) client op. `start` is the
/// broadcast the client trains from — the cluster model at dispatch
/// time, already download-codec round-tripped — shared across every
/// dispatch of the same (cluster, version).
struct Dispatch {
  std::size_t seq = 0;
  std::size_t client = 0;
  std::size_t cluster = 0;
  std::size_t version = 0;
  std::shared_ptr<const std::vector<float>> start;
  net::OpOutcome outcome;
};

/// Min-heap order on (finish time, dispatch seq). The seq tiebreak is
/// total (seqs are unique), so the pop order — and with it the whole
/// event timeline — is independent of heap layout.
struct LaterFinish {
  bool operator()(const Dispatch& a, const Dispatch& b) const {
    if (a.outcome.finish != b.outcome.finish) {
      return a.outcome.finish > b.outcome.finish;
    }
    return a.seq > b.seq;
  }
};

/// The event-driven engine. Lifetime = one run (or one resumed run).
///
/// Invariants the loop maintains:
///   * every non-quarantined client is in exactly one place: the ready
///     queue, the in-flight heap, or (its update) a cluster buffer with
///     the client itself already back in ready;
///   * a cluster's buffered updates all have staleness fixed at arrival
///     (any flush of that cluster consumes its whole buffer, so no
///     version can slip between an arrival and the flush that eats it);
///   * comm window `first_ + flushes_done_` is open while dispatching,
///     and both legs of an op are metered at dispatch time — the
///     simulator logs an op's full causal future at dispatch, so
///     metering at arrival would break CommMeter-vs-log parity at
///     audit points that fall between the two.
class BufferedScheduler {
 public:
  BufferedScheduler(Federation& federation, AsyncAdapter& adapter,
                    const AsyncConfig& config)
      : fed_(federation), adapter_(adapter), cfg_(config) {
    FEDCLUST_REQUIRE(cfg_.buffer_k >= 1, "async: buffer_k must be >= 1");
    FEDCLUST_REQUIRE(fed_.network_enabled(),
                     "the async engine needs the network simulator "
                     "(config.network.enabled)");
    FEDCLUST_REQUIRE(adapter_.supports_async(),
                     adapter_.name() << " cannot run buffered: cluster "
                                        "membership is not static");
    FEDCLUST_REQUIRE(!fed_.drift_enabled(),
                     "drift scenarios drive the synchronous engine — the "
                     "buffered scheduler has no round clock to advance "
                     "the drift plan against");
    local_ = adapter_.local_override();
    epochs_ = (local_ != nullptr ? *local_ : fed_.config().local).epochs;
  }

  RunResult run(std::size_t flushes) {
    FEDCLUST_REQUIRE(flushes >= 1, "async: need at least one flush");
    fed_.reset_comm();
    result_.algorithm = adapter_.name();
    first_ = adapter_.begin(fed_, result_);
    target_flushes_ = flushes;

    num_clusters_ = adapter_.num_clusters();
    versions_.assign(num_clusters_, 0);
    buffers_.assign(num_clusters_, {});
    broadcast_.resize(num_clusters_);
    for (std::size_t c = 0; c < num_clusters_; ++c) {
      broadcast_[c] = snapshot_broadcast(c);
    }
    active_.assign(num_clusters_, 0);
    for (std::size_t i = 0; i < fed_.num_clients(); ++i) {
      if (quarantined(i)) continue;
      ready_.push_back(i);
      ++active_[adapter_.cluster_of(i)];
    }
    fed_.comm().begin_round(first_);

    event_loop();
    adapter_.finish(result_);
    return result_;
  }

  RunResult resume(const robust::RunCheckpoint& ck, std::size_t flushes) {
    FEDCLUST_REQUIRE(ck.async.present,
                     "checkpoint holds no async scheduler state");
    FEDCLUST_REQUIRE(ck.seed == fed_.config().seed,
                     "checkpoint seed " << ck.seed
                                        << " does not match federation seed "
                                        << fed_.config().seed);
    FEDCLUST_REQUIRE(ck.net.present,
                     "async checkpoint without network state");
    first_ = static_cast<std::size_t>(ck.async.first_round);
    flushes_done_ = static_cast<std::size_t>(ck.async.flushes);
    target_flushes_ = flushes;
    FEDCLUST_REQUIRE(flushes > flushes_done_,
                     "cannot resume at flush " << flushes_done_ << " of a "
                                               << flushes << "-flush run");
    next_seq_ = static_cast<std::size_t>(ck.async.next_seq);

    result_.algorithm = adapter_.name();
    result_.rounds.reserve(ck.rounds.size());
    for (const robust::RoundRecord& m : ck.rounds) {
      result_.rounds.push_back(RoundMetrics{
          .round = static_cast<std::size_t>(m.round),
          .acc_mean = m.acc_mean,
          .acc_std = m.acc_std,
          .train_loss = m.train_loss,
          .cum_upload = m.cum_upload,
          .cum_download = m.cum_download,
          .num_clusters = static_cast<std::size_t>(m.num_clusters),
          .sim_seconds = m.sim_seconds,
          .weights_fp = m.weights_fp,
          .drift_score = m.drift_score,
          .drift_alarms = static_cast<std::size_t>(m.drift_alarms),
          .reclusters = static_cast<std::size_t>(m.reclusters)});
    }
    fed_.comm().restore(ck.comm.round_download, ck.comm.round_upload,
                        ck.comm.client_download, ck.comm.client_upload,
                        ck.comm.total_download, ck.comm.total_upload);
    FEDCLUST_REQUIRE(
        fed_.comm().round_count() == first_ + flushes_done_ + 1,
        "async checkpoint comm series inconsistent with flush index");
    fed_.network()->restore(ck.net.clock, ck.net.log);
    fed_.quarantine().restore(
        std::vector<std::size_t>(ck.quarantine_counts.begin(),
                                 ck.quarantine_counts.end()),
        ck.quarantine_max_strikes);
    adapter_.restore_state(fed_, ck);

    num_clusters_ = adapter_.num_clusters();
    FEDCLUST_REQUIRE(ck.async.versions.size() == num_clusters_,
                     "async checkpoint cluster count mismatch");
    versions_.assign(ck.async.versions.begin(), ck.async.versions.end());
    buffers_.assign(num_clusters_, {});
    broadcast_.resize(num_clusters_);
    for (std::size_t c = 0; c < num_clusters_; ++c) {
      broadcast_[c] = snapshot_broadcast(c);
    }

    // Revive in-flight and buffered dispatches against the saved
    // broadcast snapshots (keyed by cluster x version).
    std::map<std::pair<std::uint64_t, std::uint64_t>,
             std::shared_ptr<const std::vector<float>>>
        starts;
    for (const robust::AsyncStartRecord& s : ck.async.starts) {
      starts[{s.cluster, s.version}] =
          std::make_shared<const std::vector<float>>(s.weights);
    }
    const auto revive = [&](const robust::AsyncDispatchRecord& r) {
      Dispatch d;
      d.seq = static_cast<std::size_t>(r.seq);
      d.client = static_cast<std::size_t>(r.client);
      d.cluster = static_cast<std::size_t>(r.cluster);
      d.version = static_cast<std::size_t>(r.version);
      const auto it = starts.find({r.cluster, r.version});
      FEDCLUST_REQUIRE(it != starts.end(),
                       "async checkpoint is missing the broadcast for "
                       "cluster " << r.cluster << " version " << r.version);
      d.start = it->second;
      d.outcome = net::OpOutcome{r.delivered != 0, r.finish,
                                 static_cast<std::size_t>(r.attempts)};
      return d;
    };
    for (const robust::AsyncDispatchRecord& r : ck.async.inflight) {
      heap_.push_back(revive(r));
      std::push_heap(heap_.begin(), heap_.end(), LaterFinish{});
    }
    for (const robust::AsyncDispatchRecord& r : ck.async.buffered) {
      FEDCLUST_REQUIRE(r.cluster < num_clusters_,
                       "async checkpoint buffered record out of range");
      buffers_[static_cast<std::size_t>(r.cluster)].push_back(revive(r));
    }
    ready_.assign(ck.async.ready.begin(), ck.async.ready.end());
    active_.assign(num_clusters_, 0);
    for (std::size_t i = 0; i < fed_.num_clients(); ++i) {
      if (!quarantined(i)) ++active_[adapter_.cluster_of(i)];
    }

    event_loop();
    adapter_.finish(result_);
    return result_;
  }

 private:
  bool quarantined(std::size_t client) const {
    return fed_.config().robust.validate.enabled &&
           fed_.quarantine().quarantined(client);
  }

  /// What the cluster's clients receive right now: decode(encode(model))
  /// under the download codec, the model itself otherwise.
  std::shared_ptr<const std::vector<float>> snapshot_broadcast(
      std::size_t cluster) const {
    const std::span<const float> m = adapter_.cluster_model(cluster);
    std::vector<float> rt = fed_.download_roundtrip(m);
    if (rt.empty()) {
      return std::make_shared<const std::vector<float>>(m.begin(), m.end());
    }
    return std::make_shared<const std::vector<float>>(std::move(rt));
  }

  /// Flush trigger: buffer_k, but never more than the cluster's live
  /// membership — a cluster smaller than K (or shrunk by quarantine)
  /// must still make progress.
  std::size_t flush_threshold(std::size_t cluster) const {
    return std::max<std::size_t>(
        1, std::min(cfg_.buffer_k, active_[cluster]));
  }

  /// A client observed quarantined at its scheduling point leaves the
  /// rotation for good; its cluster's flush threshold may drop below the
  /// buffer's current fill.
  void retire(std::size_t client) {
    const std::size_t c = adapter_.cluster_of(client);
    if (active_[c] > 0) --active_[c];
    if (flushes_done_ < target_flushes_ && !buffers_[c].empty() &&
        buffers_[c].size() >= flush_threshold(c)) {
      flush(c);
    }
  }

  void push_dispatch(std::size_t client) {
    Dispatch d;
    d.seq = next_seq_++;
    d.client = client;
    d.cluster = adapter_.cluster_of(client);
    d.version = versions_[d.cluster];
    d.start = broadcast_[d.cluster];
    // Crash faults and dropout churn resolve at dispatch — same fate
    // model as a synchronous round with round := dispatch seq.
    const bool crashed =
        fed_.config().faults.enabled &&
        fed_.fault_plan().decide(d.seq, client, 0) ==
            robust::FaultKind::kCrash;
    const bool churned = crashed || fed_.client_fails(client, d.seq);
    const net::ClientOp op{
        .client = client,
        .download_floats = fed_.model_size(),
        .upload_floats = fed_.model_size(),
        .num_samples = fed_.client_train_size(client),
        .epochs = epochs_,
        .churned = churned,
        .upload_kind = net::MessageKind::kModelUpdate,
        .download_bytes = fed_.codec_download_op_bytes(fed_.model_size()),
        .upload_bytes = fed_.codec_upload_op_bytes(fed_.model_size())};
    d.outcome =
        fed_.network()->simulate_client_op(d.seq, op, fed_.network()->now());
    // Both legs metered now (see class invariant above). A delivered
    // upload's bytes crossed the wire even if staleness or screening
    // later discards the update.
    fed_.meter_download(client, fed_.model_size());
    if (d.outcome.delivered) fed_.meter_upload(client, fed_.model_size());
    heap_.push_back(std::move(d));
    std::push_heap(heap_.begin(), heap_.end(), LaterFinish{});
  }

  Dispatch pop_earliest() {
    std::pop_heap(heap_.begin(), heap_.end(), LaterFinish{});
    Dispatch d = std::move(heap_.back());
    heap_.pop_back();
    return d;
  }

  void event_loop() {
    const std::size_t cap =
        cfg_.inflight == 0 ? fed_.num_clients() : cfg_.inflight;
    // Loud stall guard: with pathological settings (e.g. drop
    // probability 1.0) no upload ever arrives and no buffer ever fills;
    // fail instead of spinning forever.
    constexpr std::size_t kMaxEventsBetweenFlushes = 1u << 22;
    std::size_t events_since_flush = 0;
    while (flushes_done_ < target_flushes_) {
      while (heap_.size() < cap && !ready_.empty()) {
        const std::size_t client = ready_.front();
        ready_.pop_front();
        if (quarantined(client)) {
          retire(client);
          continue;
        }
        push_dispatch(client);
      }
      if (heap_.empty()) break;  // whole fleet quarantined
      const std::size_t before = flushes_done_;

      Dispatch d = pop_earliest();
      fed_.network()->advance_clock(d.outcome.finish);
      // Completion-driven re-dispatch: the client goes straight back in
      // the rotation whether its upload made it or not.
      ready_.push_back(d.client);
      if (d.outcome.delivered) {
        const std::size_t stale = versions_[d.cluster] - d.version;
        if (cfg_.max_staleness > 0 && stale > cfg_.max_staleness) {
          // robust::RejectReason::kStaleness: too old to mix in. The
          // bytes were already metered at dispatch; with validation on
          // the discard is also a strike.
          if (fed_.config().robust.validate.enabled) {
            fed_.quarantine().strike(d.client);
          }
          ++stale_discards_;
        } else {
          const std::size_t c = d.cluster;
          buffers_[c].push_back(std::move(d));
          if (buffers_[c].size() >= flush_threshold(c)) flush(c);
        }
      }
      events_since_flush = flushes_done_ == before ? events_since_flush + 1 : 0;
      FEDCLUST_CHECK(events_since_flush < kMaxEventsBetweenFlushes,
                     "async scheduler stalled: " << events_since_flush
                         << " events without a buffer flush");
    }
  }

  void flush(std::size_t cluster) {
    std::vector<Dispatch> batch = std::move(buffers_[cluster]);
    buffers_[cluster].clear();

    // Lazy training: the timeline never depended on these weights, so
    // the flush trains its buffer here, in arrival order, with
    // slot-ordered writes — bit-identical for any executor width.
    std::vector<ClientUpdate> updates(batch.size());
    ThreadPool* pool = fed_.aggregation_pool();
    const std::size_t width =
        cfg_.concurrency == 0 ? batch.size() : cfg_.concurrency;
    for (std::size_t begin = 0; begin < batch.size(); begin += width) {
      const std::size_t end = std::min(batch.size(), begin + width);
      pool->parallel_for(begin, end, [&](std::size_t i) {
        updates[i] = fed_.train_dispatch(
            batch[i].client, batch[i].seq,
            std::span<const float>(*batch[i].start), local_);
      });
    }
    std::vector<std::span<const float>> starts;
    starts.reserve(batch.size());
    for (const Dispatch& d : batch) starts.emplace_back(*d.start);
    Federation::ScreenedBatch screened =
        fed_.transport_and_screen(std::move(updates), starts);

    // Staleness-weighted mixing coefficients over the survivors:
    // c_i ∝ num_samples_i x λ(s_i), normalized. At unit staleness this
    // is exactly aggregation_coefficients — the sync special case.
    std::vector<ClientUpdate> kept;
    std::vector<double> coeff;
    kept.reserve(batch.size());
    coeff.reserve(batch.size());
    double total = 0.0;
    double loss_sum = 0.0;
    double stale_sum = 0.0;
    for (std::size_t i = 0; i < screened.updates.size(); ++i) {
      if (!screened.accepted[i]) continue;
      const std::size_t stale = versions_[cluster] - batch[i].version;
      const double w =
          static_cast<double>(screened.updates[i].num_samples) *
          staleness_weight(cfg_.staleness_fn, cfg_.staleness_exponent, stale);
      loss_sum += screened.updates[i].train_loss;
      stale_sum += static_cast<double>(stale);
      kept.push_back(std::move(screened.updates[i]));
      coeff.push_back(w);
      total += w;
    }
    double mean_loss = 0.0;
    if (!kept.empty()) {
      for (double& w : coeff) w /= total;
      std::vector<float> mixed = fed_.aggregate_weighted(
          kept, coeff, adapter_.cluster_model(cluster));
      // Staleness-spike LR decay: when the kept batch's mean staleness
      // crosses the knob, only move lr_decay of the way toward the
      // aggregate. Stateless, so checkpoints need no new fields; at
      // lr_decay == 1 the blend is exact identity (x + 1*(y-x) == y in
      // double for floats), keeping the off-path bit-identical.
      if (cfg_.lr_decay_staleness > 0.0 && cfg_.lr_decay < 1.0 &&
          stale_sum / static_cast<double>(kept.size()) >
              cfg_.lr_decay_staleness) {
        mixed = decay_toward(adapter_.cluster_model(cluster), mixed,
                             cfg_.lr_decay);
      }
      adapter_.set_cluster_model(cluster, std::move(mixed));
      ++versions_[cluster];
      broadcast_[cluster] = snapshot_broadcast(cluster);
      mean_loss = loss_sum / static_cast<double>(kept.size());
    }

    ++flushes_done_;
    const std::size_t round = first_ + flushes_done_ - 1;
    const bool last = flushes_done_ == target_flushes_;
    const std::size_t every = cfg_.eval_every_flushes > 0
                                  ? cfg_.eval_every_flushes
                                  : fed_.config().eval_every;
    if (last || flushes_done_ % every == 0) {
      const AccuracySummary acc = adapter_.evaluate(fed_);
      result_.rounds.push_back(make_round_metrics(round, acc, mean_loss, fed_,
                                                  adapter_.num_clusters(),
                                                  adapter_.fingerprint()));
      if (last) result_.final_accuracy = acc;
    }
    if (!last) {
      fed_.comm().begin_round(first_ + flushes_done_);
      if (cfg_.checkpoint_every > 0 &&
          flushes_done_ % cfg_.checkpoint_every == 0) {
        robust::save_checkpoint(make_checkpoint(), cfg_.checkpoint_path);
      }
    }
  }

  robust::RunCheckpoint make_checkpoint() const {
    robust::RunCheckpoint ck;
    ck.next_round = first_ + flushes_done_;
    ck.seed = fed_.config().seed;
    adapter_.save_state(ck);
    ck.rounds.reserve(result_.rounds.size());
    for (const RoundMetrics& m : result_.rounds) {
      ck.rounds.push_back(robust::RoundRecord{.round = m.round,
                                              .acc_mean = m.acc_mean,
                                              .acc_std = m.acc_std,
                                              .train_loss = m.train_loss,
                                              .cum_upload = m.cum_upload,
                                              .cum_download = m.cum_download,
                                              .num_clusters = m.num_clusters,
                                              .sim_seconds = m.sim_seconds,
                                              .weights_fp = m.weights_fp,
                                              .drift_score = m.drift_score,
                                              .drift_alarms = m.drift_alarms,
                                              .reclusters = m.reclusters});
    }
    const CommMeter& comm = fed_.comm();
    ck.comm.round_download = comm.round_download();
    ck.comm.round_upload = comm.round_upload();
    ck.comm.client_download = comm.per_client_download();
    ck.comm.client_upload = comm.per_client_upload();
    ck.comm.total_download = comm.total_download();
    ck.comm.total_upload = comm.total_upload();
    ck.net.present = true;
    ck.net.clock = fed_.network()->now();
    ck.net.log = fed_.network()->log();
    const robust::Quarantine& q = fed_.quarantine();
    ck.quarantine_counts.assign(q.strike_counts().begin(),
                                q.strike_counts().end());
    ck.quarantine_max_strikes = q.max_strikes();

    ck.async.present = true;
    ck.async.first_round = first_;
    ck.async.flushes = flushes_done_;
    ck.async.next_seq = next_seq_;
    ck.async.versions.assign(versions_.begin(), versions_.end());
    ck.async.ready.assign(ready_.begin(), ready_.end());

    const auto to_record = [](const Dispatch& d) {
      return robust::AsyncDispatchRecord{
          .seq = d.seq,
          .client = d.client,
          .cluster = d.cluster,
          .version = d.version,
          .delivered = static_cast<std::uint8_t>(d.outcome.delivered ? 1 : 0),
          .finish = d.outcome.finish,
          .attempts = d.outcome.attempts};
    };
    std::vector<Dispatch> inflight(heap_.begin(), heap_.end());
    std::sort(inflight.begin(), inflight.end(),
              [](const Dispatch& a, const Dispatch& b) { return a.seq < b.seq; });
    std::map<std::pair<std::uint64_t, std::uint64_t>,
             std::shared_ptr<const std::vector<float>>>
        starts;
    for (const Dispatch& d : inflight) {
      ck.async.inflight.push_back(to_record(d));
      starts[{d.cluster, d.version}] = d.start;
    }
    for (const auto& buffer : buffers_) {
      for (const Dispatch& d : buffer) {
        ck.async.buffered.push_back(to_record(d));
        starts[{d.cluster, d.version}] = d.start;
      }
    }
    for (const auto& [key, weights] : starts) {
      ck.async.starts.push_back(
          robust::AsyncStartRecord{key.first, key.second, *weights});
    }
    return ck;
  }

  Federation& fed_;
  AsyncAdapter& adapter_;
  AsyncConfig cfg_;
  const LocalTrainConfig* local_ = nullptr;
  std::size_t epochs_ = 0;

  RunResult result_;
  std::size_t first_ = 0;
  std::size_t target_flushes_ = 0;
  std::size_t flushes_done_ = 0;
  std::size_t next_seq_ = 0;
  std::size_t num_clusters_ = 1;
  std::size_t stale_discards_ = 0;

  std::vector<std::size_t> versions_;  ///< flushes applied per cluster
  std::vector<std::size_t> active_;    ///< non-quarantined members per cluster
  std::vector<std::shared_ptr<const std::vector<float>>> broadcast_;
  std::vector<std::vector<Dispatch>> buffers_;
  std::deque<std::size_t> ready_;
  std::vector<Dispatch> heap_;  ///< std::push_heap/pop_heap + LaterFinish
};

}  // namespace

RunResult run_async(Federation& federation, AsyncAdapter& adapter,
                    const AsyncConfig& config, std::size_t flushes) {
  BufferedScheduler scheduler(federation, adapter, config);
  return scheduler.run(flushes);
}

RunResult resume_async(Federation& federation, AsyncAdapter& adapter,
                       const AsyncConfig& config,
                       const robust::RunCheckpoint& checkpoint,
                       std::size_t flushes) {
  BufferedScheduler scheduler(federation, adapter, config);
  return scheduler.resume(checkpoint, flushes);
}

}  // namespace fedclust::fl
