#include "fl/streaming.hpp"

#include <cmath>

namespace fedclust::fl {

void StreamingMoments::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double StreamingMoments::std() const { return std::sqrt(variance()); }

void StreamingRunStats::record(double acc, double loss, double wall_ms,
                               std::uint64_t weights_fp) {
  ++rounds;
  acc_mean.add(acc);
  train_loss.add(loss);
  round_wall_ms.add(wall_ms);
  last_weights_fp = weights_fp;
  // FNV-1a over the fingerprint's 8 bytes, little-endian byte order.
  for (std::size_t b = 0; b < 8; ++b) {
    weights_fp_chain ^= (weights_fp >> (8 * b)) & 0xffu;
    weights_fp_chain *= 0x100000001b3ull;
  }
}

}  // namespace fedclust::fl
