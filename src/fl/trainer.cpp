#include "fl/trainer.hpp"

#include <cmath>
#include <string>

#include "check/audit.hpp"

namespace fedclust::fl {

float train_local(nn::Model& model, const data::Dataset& dataset,
                  const LocalTrainConfig& config, Rng rng) {
  FEDCLUST_REQUIRE(!dataset.empty(), "cannot train on an empty dataset");
  FEDCLUST_REQUIRE(config.epochs > 0, "need at least one local epoch");

  nn::Sgd optimizer(model, config.sgd);
  if (config.sgd.prox_mu > 0.0) {
    optimizer.capture_prox_reference();
  }

  // Clones copy the template's dropout RNG state, so without this every
  // client would draw identical mask streams. Deriving the seed from the
  // (client, round)-keyed stream keeps replays bit-identical while
  // decorrelating clients; split() leaves the batch-shuffle stream
  // untouched.
  model.reseed_dropout(rng.split(0xd509u)());

  data::BatchIterator batches(dataset, config.batch_size, rng);
  const std::size_t steps_per_epoch = batches.batches_per_epoch();

  double last_epoch_loss = 0.0;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    double loss_sum = 0.0;
    for (std::size_t step = 0; step < steps_per_epoch; ++step) {
      const data::Batch batch = batches.next();
      model.zero_grad();
      const Tensor logits = model.forward(batch.images, /*train=*/true);
      const nn::LossResult loss =
          nn::softmax_cross_entropy(logits, batch.labels);
      model.backward(loss.grad_logits);
      if (config.audit) {
        FEDCLUST_CHECK(std::isfinite(loss.loss),
                       "local training: non-finite loss " << loss.loss
                                                          << " at epoch "
                                                          << epoch << " step "
                                                          << step);
      }
      optimizer.step();
      loss_sum += loss.loss;
    }
    last_epoch_loss = loss_sum / static_cast<double>(steps_per_epoch);
    if (config.audit) {
      // One sweep per epoch (not per step) keeps the audited run within a
      // constant factor of the plain one; the final epoch's sweep covers
      // exactly the update shipped to the server.
      const std::string at = "local training epoch " + std::to_string(epoch);
      const std::vector<float> w = model.flat_weights();
      check::assert_all_finite(w, (at + " weights").c_str());
      const std::vector<float> g = model.flat_grads();
      check::assert_all_finite(g, (at + " gradients").c_str());
    }
  }
  return static_cast<float>(last_epoch_loss);
}

EvalResult evaluate(nn::Model& model, const data::Dataset& dataset,
                    std::size_t batch_size) {
  FEDCLUST_REQUIRE(!dataset.empty(), "cannot evaluate on an empty dataset");
  EvalResult out;
  std::size_t done = 0;
  double loss_weighted = 0.0;
  double correct = 0.0;
  while (done < dataset.size()) {
    const std::size_t take = std::min(batch_size, dataset.size() - done);
    std::vector<std::size_t> idx(take);
    for (std::size_t i = 0; i < take; ++i) idx[i] = done + i;
    const data::Batch batch = dataset.gather(idx);
    const Tensor logits = model.forward(batch.images, /*train=*/false);
    loss_weighted += static_cast<double>(nn::softmax_cross_entropy_loss(
                         logits, batch.labels)) *
                     static_cast<double>(take);
    correct += nn::accuracy(logits, batch.labels) * static_cast<double>(take);
    done += take;
  }
  out.loss = loss_weighted / static_cast<double>(dataset.size());
  out.accuracy = correct / static_cast<double>(dataset.size());
  return out;
}

}  // namespace fedclust::fl
