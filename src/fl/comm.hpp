// Communication accounting.
//
// Every parameter vector shipped between server and clients is metered
// here. The paper's efficiency claim is that FedClust forms clusters in
// ONE communication round (uploading only final-layer weights), versus
// CFL's many rounds of full-model traffic — this meter is what the
// comm_cost bench reads.
//
// Without the network simulator, transfers are metered at their encoded
// size: bare float32 width (CommMeter::float_bytes) when no update codec
// is configured, or the codec's encoded byte count when one is (see
// Federation::download_wire_bytes / upload_wire_bytes). With the
// simulator enabled the engine meters framed wire sizes instead — raw v2
// frames or codec v3 frames as appropriate — and the meter's totals are
// exactly the delivered traffic of the simulator's event log (see
// net::delivered_bytes) — the meter is a byte-count view over that log.
// CommMeter::float_bytes itself is only the identity/raw fallback; all
// codec-aware sizing lives in the Federation helpers above, which every
// metering call site routes through.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace fedclust::fl {

/// Byte counters split by direction, with per-round and per-client
/// granularity.
class CommMeter {
 public:
  /// Marks the beginning of round `r`. Rounds must be opened strictly in
  /// order starting at 0; anything else throws instead of mis-indexing
  /// the per-round series. Per-client attribution for rounds opened this
  /// way goes to the legacy dense vectors (sized to the largest client
  /// id) — unchanged behaviour for the classic 20-client benches.
  void begin_round(std::size_t round);

  /// Opens round `r` in cohort-attribution mode: per-client bytes are
  /// staged in O(cohort) slot arrays keyed by position in the (sorted,
  /// unique) `cohort` id list and folded into a sparse, sorted
  /// (client, bytes) ledger when the next round opens or flush_cohort()
  /// runs. Totals and per-round series behave exactly like
  /// begin_round(round). Fleet-scale drivers use this overload so comm
  /// accounting stays O(cohort + clients ever attributed), never
  /// O(fleet).
  void begin_round(std::size_t round, std::span<const std::size_t> cohort);

  /// Folds the current round's staged cohort-slot bytes into the sparse
  /// ledger (idempotent; called automatically by the next begin_round).
  void flush_cohort();

  /// Records server -> client traffic (model broadcast). The overload
  /// with `client` additionally attributes the bytes to that client.
  void download(std::uint64_t bytes);
  void download(std::uint64_t bytes, std::size_t client);
  /// Records client -> server traffic (update upload).
  void upload(std::uint64_t bytes);
  void upload(std::uint64_t bytes, std::size_t client);

  /// Bytes for a vector of `num_floats` float32 values. This hard-codes
  /// float32 width and is correct only for RAW (uncompressed) transfers;
  /// codec-encoded transfers must be metered via
  /// Federation::download_wire_bytes / upload_wire_bytes instead.
  static std::uint64_t float_bytes(std::size_t num_floats) {
    return static_cast<std::uint64_t>(num_floats) * 4;
  }

  std::uint64_t total_download() const { return total_down_; }
  std::uint64_t total_upload() const { return total_up_; }
  std::uint64_t total() const { return total_down_ + total_up_; }

  /// Number of rounds opened so far.
  std::size_t round_count() const { return down_.size(); }

  /// Per-round totals (index = round order passed to begin_round).
  const std::vector<std::uint64_t>& round_download() const { return down_; }
  const std::vector<std::uint64_t>& round_upload() const { return up_; }

  /// Whole-run bytes attributed to one client (0 for clients never seen
  /// by the attributing overloads). Sums the dense vectors, the sparse
  /// cohort ledger, and the current round's staged slots.
  std::uint64_t client_download(std::size_t client) const;
  std::uint64_t client_upload(std::size_t client) const;
  /// Dense per-client series, sized to the largest attributed client
  /// id + 1. Covers only rounds opened WITHOUT a cohort; cohort-mode
  /// attribution lives in the sparse ledgers below.
  const std::vector<std::uint64_t>& per_client_download() const {
    return client_down_;
  }
  const std::vector<std::uint64_t>& per_client_upload() const {
    return client_up_;
  }
  /// Sparse whole-run (client, bytes) ledgers from cohort-mode rounds,
  /// sorted by client id. Excludes the current round until it flushes.
  const std::vector<std::pair<std::size_t, std::uint64_t>>&
  cohort_download_ledger() const {
    return ledger_down_;
  }
  const std::vector<std::pair<std::size_t, std::uint64_t>>&
  cohort_upload_ledger() const {
    return ledger_up_;
  }

  void reset();

  /// Restores all counters from a checkpoint snapshot, so metering can
  /// continue with begin_round(round_count()).
  void restore(std::vector<std::uint64_t> round_down,
               std::vector<std::uint64_t> round_up,
               std::vector<std::uint64_t> client_down,
               std::vector<std::uint64_t> client_up, std::uint64_t total_down,
               std::uint64_t total_up);

 private:
  std::vector<std::uint64_t> down_;
  std::vector<std::uint64_t> up_;
  std::vector<std::uint64_t> client_down_;
  std::vector<std::uint64_t> client_up_;
  std::uint64_t total_down_ = 0;
  std::uint64_t total_up_ = 0;

  // Cohort-mode staging (current round) and sparse whole-run ledgers.
  bool cohort_mode_ = false;
  std::vector<std::size_t> cohort_ids_;  ///< sorted, unique
  std::vector<std::uint64_t> slot_down_;
  std::vector<std::uint64_t> slot_up_;
  std::vector<std::pair<std::size_t, std::uint64_t>> ledger_down_;
  std::vector<std::pair<std::size_t, std::uint64_t>> ledger_up_;
};

}  // namespace fedclust::fl
