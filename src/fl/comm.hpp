// Communication accounting.
//
// Every parameter vector shipped between server and clients is metered at
// float32 width. The paper's efficiency claim is that FedClust forms
// clusters in ONE communication round (uploading only final-layer
// weights), versus CFL's many rounds of full-model traffic — this meter
// is what the comm_cost bench reads.
#pragma once

#include <cstdint>
#include <vector>

namespace fedclust::fl {

/// Byte counters split by direction, with per-round granularity.
class CommMeter {
 public:
  /// Marks the beginning of round `r`; rounds must be opened in order.
  void begin_round(std::size_t round);

  /// Records server -> client traffic (model broadcast).
  void download(std::uint64_t bytes);
  /// Records client -> server traffic (update upload).
  void upload(std::uint64_t bytes);

  /// Bytes for a vector of `num_floats` float32 values.
  static std::uint64_t float_bytes(std::size_t num_floats) {
    return static_cast<std::uint64_t>(num_floats) * 4;
  }

  std::uint64_t total_download() const { return total_down_; }
  std::uint64_t total_upload() const { return total_up_; }
  std::uint64_t total() const { return total_down_ + total_up_; }

  /// Per-round totals (index = round order passed to begin_round).
  const std::vector<std::uint64_t>& round_download() const { return down_; }
  const std::vector<std::uint64_t>& round_upload() const { return up_; }

  void reset();

 private:
  std::vector<std::uint64_t> down_;
  std::vector<std::uint64_t> up_;
  std::uint64_t total_down_ = 0;
  std::uint64_t total_up_ = 0;
};

}  // namespace fedclust::fl
