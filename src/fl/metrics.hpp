// Per-round metric records and the result of a full algorithm run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fl/federation.hpp"

namespace fedclust::fl {

/// Snapshot taken at the end of an evaluated round.
struct RoundMetrics {
  std::size_t round = 0;
  double acc_mean = 0.0;  ///< mean per-client local test accuracy
  double acc_std = 0.0;   ///< std across clients
  double train_loss = 0.0;
  std::uint64_t cum_upload = 0;    ///< cumulative bytes client -> server
  std::uint64_t cum_download = 0;  ///< cumulative bytes server -> client
  std::size_t num_clusters = 1;    ///< active clusters this round
  /// Cumulative simulated wall-clock seconds (0 when the network
  /// simulator is disabled).
  double sim_seconds = 0.0;
  /// FNV-1a fingerprint of the algorithm's server-side model state after
  /// this round's aggregation (check::weights_fingerprint). Equal
  /// fingerprints mean bit-identical weights — the determinism audit
  /// compares trajectories through this field.
  std::uint64_t weights_fp = 0;
  /// Drift telemetry (dynamic FedClust only; zeros otherwise). The score
  /// is the detector's largest windowed mean-shift drop observed this
  /// round, alarms counts clusters whose drop breached hysteresis, and
  /// reclusters counts split/merge recoveries applied this round.
  double drift_score = 0.0;
  std::size_t drift_alarms = 0;
  std::size_t reclusters = 0;
};

/// Everything a benchmark needs from one algorithm execution.
struct RunResult {
  std::string algorithm;
  std::vector<RoundMetrics> rounds;
  /// Per-client cluster assignment at the end of the run (all zeros for
  /// global methods).
  std::vector<std::size_t> cluster_labels;
  /// Final server-side cluster models (index = cluster id), flat
  /// weights. Populated by clustered algorithms whose end state is
  /// servable (FedClust); empty for methods that don't keep per-cluster
  /// models. serve::freeze() builds an inference snapshot from this.
  std::vector<std::vector<float>> cluster_weights;
  /// Final personalized accuracy summary.
  AccuracySummary final_accuracy;

  const RoundMetrics& final_round() const;
  /// First evaluated round whose mean accuracy reaches `target`, with the
  /// cumulative bytes spent by then; returns false if never reached.
  bool rounds_to_accuracy(double target, std::size_t& round_out,
                          std::uint64_t& bytes_out) const;
  /// Simulated wall-clock seconds until mean accuracy first reaches
  /// `target`; returns false if never reached (seconds are only
  /// meaningful when the run used the network simulator).
  bool time_to_accuracy(double target, double& seconds_out) const;
};

/// Helper used by every algorithm to append a RoundMetrics entry;
/// snapshots the federation's byte counters and simulated clock.
/// `weights_fp` is the fingerprint of the algorithm's post-aggregation
/// model state (check::weights_fingerprint over whatever the method
/// serves clients: the global model, cluster models, per-client models).
/// Under config().audit with the network simulator enabled, also
/// verifies CommMeter-vs-event-log byte parity.
RoundMetrics make_round_metrics(std::size_t round, const AccuracySummary& acc,
                                double train_loss,
                                const Federation& federation,
                                std::size_t num_clusters,
                                std::uint64_t weights_fp);

}  // namespace fedclust::fl
