#include "fl/comm.hpp"

#include "utils/error.hpp"

namespace fedclust::fl {
namespace {

void attribute(std::vector<std::uint64_t>& per_client, std::size_t client,
               std::uint64_t bytes) {
  if (client >= per_client.size()) per_client.resize(client + 1, 0);
  per_client[client] += bytes;
}

}  // namespace

void CommMeter::begin_round(std::size_t round) {
  FEDCLUST_REQUIRE(round == down_.size(),
                   "rounds must be opened in order starting at 0: expected "
                       << down_.size() << ", got " << round
                       << " (out-of-order or repeated begin_round)");
  down_.push_back(0);
  up_.push_back(0);
}

void CommMeter::download(std::uint64_t bytes) {
  FEDCLUST_REQUIRE(!down_.empty(), "begin_round before recording traffic");
  down_.back() += bytes;
  total_down_ += bytes;
}

void CommMeter::download(std::uint64_t bytes, std::size_t client) {
  download(bytes);
  attribute(client_down_, client, bytes);
}

void CommMeter::upload(std::uint64_t bytes) {
  FEDCLUST_REQUIRE(!up_.empty(), "begin_round before recording traffic");
  up_.back() += bytes;
  total_up_ += bytes;
}

void CommMeter::upload(std::uint64_t bytes, std::size_t client) {
  upload(bytes);
  attribute(client_up_, client, bytes);
}

std::uint64_t CommMeter::client_download(std::size_t client) const {
  return client < client_down_.size() ? client_down_[client] : 0;
}

std::uint64_t CommMeter::client_upload(std::size_t client) const {
  return client < client_up_.size() ? client_up_[client] : 0;
}

void CommMeter::reset() {
  down_.clear();
  up_.clear();
  client_down_.clear();
  client_up_.clear();
  total_down_ = 0;
  total_up_ = 0;
}

void CommMeter::restore(std::vector<std::uint64_t> round_down,
                        std::vector<std::uint64_t> round_up,
                        std::vector<std::uint64_t> client_down,
                        std::vector<std::uint64_t> client_up,
                        std::uint64_t total_down, std::uint64_t total_up) {
  FEDCLUST_REQUIRE(round_down.size() == round_up.size(),
                   "restore: per-round series must have equal length");
  down_ = std::move(round_down);
  up_ = std::move(round_up);
  client_down_ = std::move(client_down);
  client_up_ = std::move(client_up);
  total_down_ = total_down;
  total_up_ = total_up;
}

}  // namespace fedclust::fl
