#include "fl/comm.hpp"

#include "utils/error.hpp"

namespace fedclust::fl {

void CommMeter::begin_round(std::size_t round) {
  FEDCLUST_REQUIRE(round == down_.size(),
                   "rounds must be opened in order: expected "
                       << down_.size() << ", got " << round);
  down_.push_back(0);
  up_.push_back(0);
}

void CommMeter::download(std::uint64_t bytes) {
  FEDCLUST_REQUIRE(!down_.empty(), "begin_round before recording traffic");
  down_.back() += bytes;
  total_down_ += bytes;
}

void CommMeter::upload(std::uint64_t bytes) {
  FEDCLUST_REQUIRE(!up_.empty(), "begin_round before recording traffic");
  up_.back() += bytes;
  total_up_ += bytes;
}

void CommMeter::reset() {
  down_.clear();
  up_.clear();
  total_down_ = 0;
  total_up_ = 0;
}

}  // namespace fedclust::fl
