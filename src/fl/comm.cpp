#include "fl/comm.hpp"

#include <algorithm>

#include "utils/error.hpp"

namespace fedclust::fl {
namespace {

void attribute(std::vector<std::uint64_t>& per_client, std::size_t client,
               std::uint64_t bytes) {
  if (client >= per_client.size()) per_client.resize(client + 1, 0);
  per_client[client] += bytes;
}

/// Two-pointer merge of staged (id, bytes) slots into a sorted ledger.
void merge_into_ledger(
    std::vector<std::pair<std::size_t, std::uint64_t>>& ledger,
    const std::vector<std::size_t>& ids,
    const std::vector<std::uint64_t>& slot_bytes) {
  std::vector<std::pair<std::size_t, std::uint64_t>> merged;
  merged.reserve(ledger.size() + ids.size());
  std::size_t li = 0;
  for (std::size_t s = 0; s < ids.size(); ++s) {
    if (slot_bytes[s] == 0) continue;
    while (li < ledger.size() && ledger[li].first < ids[s]) {
      merged.push_back(ledger[li++]);
    }
    if (li < ledger.size() && ledger[li].first == ids[s]) {
      merged.emplace_back(ids[s], ledger[li].second + slot_bytes[s]);
      ++li;
    } else {
      merged.emplace_back(ids[s], slot_bytes[s]);
    }
  }
  while (li < ledger.size()) merged.push_back(ledger[li++]);
  ledger = std::move(merged);
}

std::uint64_t ledger_lookup(
    const std::vector<std::pair<std::size_t, std::uint64_t>>& ledger,
    std::size_t client) {
  const auto it = std::lower_bound(
      ledger.begin(), ledger.end(), client,
      [](const auto& entry, std::size_t c) { return entry.first < c; });
  return it != ledger.end() && it->first == client ? it->second : 0;
}

}  // namespace

void CommMeter::begin_round(std::size_t round) {
  FEDCLUST_REQUIRE(round == down_.size(),
                   "rounds must be opened in order starting at 0: expected "
                       << down_.size() << ", got " << round
                       << " (out-of-order or repeated begin_round)");
  flush_cohort();
  cohort_mode_ = false;
  down_.push_back(0);
  up_.push_back(0);
}

void CommMeter::begin_round(std::size_t round,
                            std::span<const std::size_t> cohort) {
  begin_round(round);
  cohort_mode_ = true;
  cohort_ids_.assign(cohort.begin(), cohort.end());
  FEDCLUST_REQUIRE(std::is_sorted(cohort_ids_.begin(), cohort_ids_.end()) &&
                       std::adjacent_find(cohort_ids_.begin(),
                                          cohort_ids_.end()) ==
                           cohort_ids_.end(),
                   "cohort ids must be sorted and unique");
  slot_down_.assign(cohort_ids_.size(), 0);
  slot_up_.assign(cohort_ids_.size(), 0);
}

void CommMeter::flush_cohort() {
  if (!cohort_mode_) return;
  merge_into_ledger(ledger_down_, cohort_ids_, slot_down_);
  merge_into_ledger(ledger_up_, cohort_ids_, slot_up_);
  cohort_mode_ = false;
  cohort_ids_.clear();
  slot_down_.clear();
  slot_up_.clear();
}

void CommMeter::download(std::uint64_t bytes) {
  FEDCLUST_REQUIRE(!down_.empty(), "begin_round before recording traffic");
  down_.back() += bytes;
  total_down_ += bytes;
}

void CommMeter::download(std::uint64_t bytes, std::size_t client) {
  download(bytes);
  if (cohort_mode_) {
    const auto it =
        std::lower_bound(cohort_ids_.begin(), cohort_ids_.end(), client);
    if (it != cohort_ids_.end() && *it == client) {
      slot_down_[static_cast<std::size_t>(it - cohort_ids_.begin())] += bytes;
      return;
    }
    // Out-of-cohort attribution in a cohort round (rare: protocol
    // side-traffic) falls back to the dense vector.
  }
  attribute(client_down_, client, bytes);
}

void CommMeter::upload(std::uint64_t bytes) {
  FEDCLUST_REQUIRE(!up_.empty(), "begin_round before recording traffic");
  up_.back() += bytes;
  total_up_ += bytes;
}

void CommMeter::upload(std::uint64_t bytes, std::size_t client) {
  upload(bytes);
  if (cohort_mode_) {
    const auto it =
        std::lower_bound(cohort_ids_.begin(), cohort_ids_.end(), client);
    if (it != cohort_ids_.end() && *it == client) {
      slot_up_[static_cast<std::size_t>(it - cohort_ids_.begin())] += bytes;
      return;
    }
  }
  attribute(client_up_, client, bytes);
}

std::uint64_t CommMeter::client_download(std::size_t client) const {
  std::uint64_t bytes = client < client_down_.size() ? client_down_[client] : 0;
  bytes += ledger_lookup(ledger_down_, client);
  if (cohort_mode_) {
    const auto it =
        std::lower_bound(cohort_ids_.begin(), cohort_ids_.end(), client);
    if (it != cohort_ids_.end() && *it == client) {
      bytes += slot_down_[static_cast<std::size_t>(it - cohort_ids_.begin())];
    }
  }
  return bytes;
}

std::uint64_t CommMeter::client_upload(std::size_t client) const {
  std::uint64_t bytes = client < client_up_.size() ? client_up_[client] : 0;
  bytes += ledger_lookup(ledger_up_, client);
  if (cohort_mode_) {
    const auto it =
        std::lower_bound(cohort_ids_.begin(), cohort_ids_.end(), client);
    if (it != cohort_ids_.end() && *it == client) {
      bytes += slot_up_[static_cast<std::size_t>(it - cohort_ids_.begin())];
    }
  }
  return bytes;
}

void CommMeter::reset() {
  down_.clear();
  up_.clear();
  client_down_.clear();
  client_up_.clear();
  total_down_ = 0;
  total_up_ = 0;
  cohort_mode_ = false;
  cohort_ids_.clear();
  slot_down_.clear();
  slot_up_.clear();
  ledger_down_.clear();
  ledger_up_.clear();
}

void CommMeter::restore(std::vector<std::uint64_t> round_down,
                        std::vector<std::uint64_t> round_up,
                        std::vector<std::uint64_t> client_down,
                        std::vector<std::uint64_t> client_up,
                        std::uint64_t total_down, std::uint64_t total_up) {
  FEDCLUST_REQUIRE(round_down.size() == round_up.size(),
                   "restore: per-round series must have equal length");
  down_ = std::move(round_down);
  up_ = std::move(round_up);
  client_down_ = std::move(client_down);
  client_up_ = std::move(client_up);
  total_down_ = total_down;
  total_up_ = total_up;
  cohort_mode_ = false;
  cohort_ids_.clear();
  slot_down_.clear();
  slot_up_.clear();
  ledger_down_.clear();
  ledger_up_.clear();
}

}  // namespace fedclust::fl
