// Persisting run results for offline analysis/plotting.
//
// Bench harnesses print human-readable tables; these helpers dump the
// full per-round time series and per-client outcomes as CSV (one row per
// evaluated round / per client) so figures can be regenerated outside
// the binary.
#pragma once

#include <string>
#include <vector>

#include "fl/metrics.hpp"

namespace fedclust::fl {

/// CSV of the per-round series: algorithm,round,acc_mean,acc_std,
/// train_loss,cum_upload,cum_download,num_clusters,sim_seconds.
std::string rounds_to_csv(const RunResult& result);

/// CSV of the final per-client outcome: algorithm,client,cluster,
/// accuracy.
std::string clients_to_csv(const RunResult& result);

/// Concatenates the per-round series of several runs (shared header) —
/// the shape plotting scripts want for method-comparison figures.
std::string rounds_to_csv(const std::vector<RunResult>& results);

/// Writes `content` to `path`, throwing on I/O failure.
void write_text_file(const std::string& path, const std::string& content);

}  // namespace fedclust::fl
