// Streaming (O(1)-memory) metric reducers for fleet-scale runs.
//
// The classic RunResult keeps one RoundMetrics per evaluated round and
// evaluate_personalized keeps one accuracy per client — fine for 20
// clients × 50 rounds, hostile at fleet scale. StreamingMoments is a
// Welford accumulator (numerically stable single-pass mean/variance);
// StreamingRunStats summarizes a whole run in a handful of scalars while
// preserving determinism checkability: it chains every round's weights_fp
// through an order-sensitive FNV-1a fold, so two runs produced identical
// per-round server states iff their chains match — without storing the
// per-round history.
#pragma once

#include <cstddef>
#include <cstdint>

namespace fedclust::fl {

/// Welford single-pass mean/variance accumulator.
class StreamingMoments {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Population variance (÷ n, matching AccuracySummary's convention).
  double variance() const {
    return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
  }
  double std() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Whole-run summary in O(1) memory: per-round reducers + the weights
/// fingerprint chain.
struct StreamingRunStats {
  std::size_t rounds = 0;
  StreamingMoments acc_mean;       ///< over evaluated rounds' cohort means
  StreamingMoments train_loss;     ///< over per-round mean train losses
  StreamingMoments round_wall_ms;  ///< real wall-clock per round
  std::uint64_t last_weights_fp = 0;
  /// FNV-1a fold over every recorded round's weights_fp, in order.
  std::uint64_t weights_fp_chain = 0xcbf29ce484222325ull;

  void record(double acc, double loss, double wall_ms,
              std::uint64_t weights_fp);
};

}  // namespace fedclust::fl
