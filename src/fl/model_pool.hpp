// Recycled model clones for the training/evaluation hot path.
//
// Before virtualization the engine cloned the template model once per
// trained (and once per evaluated) client per round — O(cohort) fresh
// allocations of weights, gradients, and layer scratch arenas every
// round. ModelPool keeps returned clones on a free list so a round's
// transient model count equals its peak concurrency (≈ the thread-pool
// width), not the cohort size.
//
// Bit-safety of reuse: a leased model carries arbitrary leftover state,
// but every engine call sequence re-establishes all of it —
// set_flat_weights() overwrites every parameter INCLUDING BatchNorm
// running statistics (they are registered params and live in the flat
// vector), train_local() reseeds the dropout stream from the client RNG
// and constructs a fresh optimizer, and gradients are zeroed per step.
// A recycled clone therefore trains and evaluates bit-identically to a
// fresh template.clone() — the eager-vs-lazy equivalence test pins this.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "nn/model.hpp"
#include "utils/thread_pool.hpp"

namespace fedclust::fl {

class ModelPool {
 public:
  /// `template_model` must outlive the pool; `kernel_pool` (may be null)
  /// is lent to every leased clone.
  ModelPool(const nn::Model& template_model, ThreadPool* kernel_pool);

  /// RAII lease: returns the clone to the pool on destruction.
  class Lease {
   public:
    Lease(ModelPool* pool, std::unique_ptr<nn::Model> model)
        : pool_(pool), model_(std::move(model)) {}
    ~Lease() {
      if (pool_ != nullptr && model_ != nullptr) {
        pool_->release(std::move(model_));
      }
    }
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), model_(std::move(other.model_)) {
      other.pool_ = nullptr;
    }
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    nn::Model& operator*() { return *model_; }
    nn::Model* operator->() { return model_.get(); }

   private:
    ModelPool* pool_;
    std::unique_ptr<nn::Model> model_;
  };

  /// A ready-to-use clone (recycled if available, freshly cloned
  /// otherwise) with the kernel pool attached. Thread-safe.
  Lease acquire();

  /// Clones currently idle on the free list.
  std::size_t idle() const;
  /// Total clones ever created — the pool's high-water concurrency.
  std::size_t created() const;

 private:
  friend class Lease;
  void release(std::unique_ptr<nn::Model> model);

  const nn::Model* template_;
  ThreadPool* kernel_pool_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<nn::Model>> free_;
  std::size_t created_ = 0;
};

}  // namespace fedclust::fl
