// Pluggable update-compression codecs for FCMG model-update frames.
//
// A codec turns a flat float32 weight vector (a full model, or K models
// back to back) into an opaque byte payload and back. All codecs share
// one interface so the federation engine, the frame layer, and the
// benchmarks can swap them freely:
//
//   identity  raw packed little-endian float32 (bit-exact round trip)
//   int8      per-tensor linear quantization, scale = absmax/127
//   int4      per-tensor linear quantization to [-7, 7] nibbles,
//             scale = absmax/7, two values per byte
//   topk      global magnitude sparsification: the k = round(frac·n)
//             coordinates whose |value − reference| is largest are sent
//             as (index, raw value) pairs; the rest decode to the
//             reference. k = n reconstructs bit-exactly.
//   sign      1-bit sign-SGD: per-tensor scale = mean |value − reference|
//             plus one sign bit per coordinate; pairs with the
//             majority-vote aggregation helper below.
//   delta     int8 quantization of the residual (value − reference),
//             i.e. delta encoding against the last broadcast model.
//
// Layout: `layout` is the span of per-tensor segment sizes (from
// nn::Model::slices()); per-tensor codecs derive one scale per segment.
// An empty layout means a single segment covering all n values. When a
// payload carries K models back to back, the caller repeats the model
// layout K times. sum(layout) must equal n.
//
// Reference semantics: `reference` is the last broadcast model as the
// *receiver* knows it (decoded through the download codec, so both ends
// agree bit-for-bit). An empty reference means "no shared state": topk /
// sign / delta fall back to a zero reference; identity / int8 / int4
// ignore the reference entirely.
//
// Determinism: encode/decode call only element-wise kernels
// (ops::KernelTable quantize_i8 / dequantize_i8 / absmax) plus fixed-
// order scalar passes, so results are bit-identical across kernel-thread
// counts within a build, matching the repo-wide determinism contract.
//
// Non-finite inputs: encoders pre-scan each segment; any non-finite
// value poisons that segment's scale to quiet-NaN (payload zeroed).
// validate() rejects such frames (the robust/validate screening maps
// that to a kCodecEnvelope quarantine strike); decode() without
// validation reproduces NaN floats — mirroring how an unscreened
// NaN-poisoned raw update propagates today. Structurally malformed
// frames (wrong size, bad top-k indices) always throw fedclust::Error.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace fedclust::compress {

/// Wire identifier of a codec; the u16 value is frozen into the FCMG v3
/// frame header, so entries must never be renumbered.
enum class CodecKind : std::uint16_t {
  kIdentity = 0,
  kInt8 = 1,
  kInt4 = 2,
  kTopK = 3,
  kSignSgd = 4,
  kDelta = 5,
};

/// Compression settings carried by FederationConfig. Disabled (the
/// default) keeps the engine on the exact pre-codec code path — no codec
/// objects are even constructed — so existing trajectories stay
/// bit-identical by construction. Enabled with kIdentity exercises the
/// full encode/frame/decode transport with a bit-exact codec, which is
/// what the CI parity gate runs.
struct CompressionConfig {
  bool enabled = false;
  CodecKind upload = CodecKind::kIdentity;    ///< client → server frames
  CodecKind download = CodecKind::kIdentity;  ///< server → client frames
  double topk_frac = 0.05;  ///< fraction of coordinates kept by kTopK
};

/// Abstract update codec. Implementations are stateless and
/// thread-compatible: one instance may encode/decode concurrently from
/// many threads.
class UpdateCodec {
 public:
  virtual ~UpdateCodec() = default;

  virtual CodecKind kind() const = 0;
  virtual const char* name() const = 0;

  /// Exact byte size of an encoded frame for an n-float payload with the
  /// given layout. Value-independent, so byte metering never has to
  /// materialise an encoding.
  virtual std::size_t encoded_bytes(
      std::size_t n, std::span<const std::size_t> layout) const = 0;

  /// Encodes `values` (against `reference` for reference-based codecs)
  /// into a fresh byte frame of exactly encoded_bytes() bytes.
  virtual std::vector<std::uint8_t> encode(
      std::span<const float> values, std::span<const float> reference,
      std::span<const std::size_t> layout) const = 0;

  /// Structural + envelope check of an encoded frame: size, scale
  /// finiteness, top-k index bounds/ordering. Returns false (with a
  /// human-readable reason in *why when non-null) instead of throwing,
  /// so server-side screening can quarantine the sender.
  virtual bool validate(std::span<const std::uint8_t> frame, std::size_t n,
                        std::span<const std::size_t> layout,
                        std::string* why) const = 0;

  /// Decodes a frame into `out` (out.size() == n). Throws
  /// fedclust::Error on structural corruption; NaN-poisoned scales
  /// decode to NaN floats (see header comment).
  virtual void decode(std::span<const std::uint8_t> frame,
                      std::span<float> out, std::span<const float> reference,
                      std::span<const std::size_t> layout) const = 0;
};

/// Builds a codec instance. `topk_frac` only affects kTopK.
std::unique_ptr<UpdateCodec> make_codec(CodecKind kind,
                                        double topk_frac = 0.05);

/// Stable lowercase names ("identity", "int8", "int4", "topk", "sign",
/// "delta") used by CLI flags and bench JSON.
const char* to_string(CodecKind kind);

/// Parses a name produced by to_string; returns false on unknown input.
bool codec_from_string(std::string_view name, CodecKind* out);

/// True iff `value` is a valid CodecKind wire id.
bool valid_codec_id(std::uint16_t value);

/// encode + decode in one step: out = decode(encode(values)). The
/// degradation every lossy codec imposes on an update before it enters
/// aggregation — shared by the engine's transport simulation and the
/// property tests.
void roundtrip(const UpdateCodec& codec, std::span<const float> values,
               std::span<const float> reference,
               std::span<const std::size_t> layout, std::span<float> out);

/// Sign-SGD majority-vote aggregation over decoded sign updates.
/// Per coordinate i (fixed ascending-u double accumulation, so the
/// result is bit-identical for any caller-side chunking):
///   vote_i  = Σ_u coeff[u] · sgn(updates[u][i] − reference[i])
///   mag_i   = Σ_u coeff[u] · |updates[u][i] − reference[i]|
///   out_i   = reference[i] + sgn(vote_i) · mag_i   (vote 0 → reference)
/// coeff are the aggregation weights (summing to 1); `reference` is the
/// pre-round model both sides encoded against.
void signsgd_majority_vote(const float* const* updates, const double* coeff,
                           std::size_t num, const float* reference, float* out,
                           std::size_t n);

}  // namespace fedclust::compress
