#include "compress/codec.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "nn/serialize.hpp"
#include "tensor/kernels.hpp"
#include "utils/error.hpp"

namespace fedclust::compress {
namespace {

namespace wire = nn::wire;

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();

/// Visits (offset, size) for every segment; an empty layout is one
/// segment covering [0, n).
template <typename Fn>
void for_each_segment(std::size_t n, std::span<const std::size_t> layout,
                      Fn&& fn) {
  if (layout.empty()) {
    if (n > 0) fn(std::size_t{0}, n);
    return;
  }
  std::size_t off = 0;
  for (const std::size_t seg : layout) {
    fn(off, seg);
    off += seg;
  }
  FEDCLUST_CHECK(off == n, "layout sums to " << off << ", payload has " << n
                                             << " floats");
}

bool all_finite(const float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(x[i])) return false;
  }
  return true;
}

void put_scale(std::vector<std::uint8_t>& buf, float scale) {
  wire::put_f32(buf, std::span<const float>(&scale, 1));
}

float read_scale(wire::Reader& r) {
  float scale = 0.0f;
  r.f32(std::span<float>(&scale, 1));
  return scale;
}

bool fail(std::string* why, const std::string& reason) {
  if (why != nullptr) *why = reason;
  return false;
}

// -- identity -----------------------------------------------------------------

class IdentityCodec final : public UpdateCodec {
 public:
  CodecKind kind() const override { return CodecKind::kIdentity; }
  const char* name() const override { return "identity"; }

  std::size_t encoded_bytes(std::size_t n,
                            std::span<const std::size_t>) const override {
    return n * sizeof(float);
  }

  std::vector<std::uint8_t> encode(
      std::span<const float> values, std::span<const float>,
      std::span<const std::size_t> layout) const override {
    for_each_segment(values.size(), layout, [](std::size_t, std::size_t) {});
    std::vector<std::uint8_t> frame;
    frame.reserve(values.size() * sizeof(float));
    wire::put_f32(frame, values);
    return frame;
  }

  bool validate(std::span<const std::uint8_t> frame, std::size_t n,
                std::span<const std::size_t>, std::string* why) const override {
    if (frame.size() != n * sizeof(float)) {
      return fail(why, "identity frame size mismatch");
    }
    return true;
  }

  void decode(std::span<const std::uint8_t> frame, std::span<float> out,
              std::span<const float>,
              std::span<const std::size_t>) const override {
    FEDCLUST_CHECK(frame.size() == out.size() * sizeof(float),
                   "identity frame size mismatch");
    wire::Reader r(frame);
    r.f32(out);
  }
};

// -- int8 / int4 / delta ------------------------------------------------------

/// Shared linear quantizer: per segment a float32 scale = absmax/qmax
/// followed by the quantized levels — one signed byte per value for
/// int8/delta, one biased nibble (q + 7 in [0, 14], two per byte) for
/// int4. `delta` quantizes the residual against the reference instead
/// of the value itself.
class QuantCodec final : public UpdateCodec {
 public:
  QuantCodec(CodecKind kind, int qmax, bool nibble, bool delta)
      : kind_(kind), qmax_(qmax), nibble_(nibble), delta_(delta) {}

  CodecKind kind() const override { return kind_; }
  const char* name() const override { return to_string(kind_); }

  std::size_t encoded_bytes(
      std::size_t n, std::span<const std::size_t> layout) const override {
    std::size_t total = 0;
    for_each_segment(n, layout, [&](std::size_t, std::size_t seg) {
      total += sizeof(float) + payload_bytes(seg);
    });
    return total;
  }

  std::vector<std::uint8_t> encode(
      std::span<const float> values, std::span<const float> reference,
      std::span<const std::size_t> layout) const override {
    FEDCLUST_CHECK(!delta_ || reference.empty() ||
                       reference.size() == values.size(),
                   "delta reference size mismatch");
    const auto& k = ops::kernels();
    std::vector<std::uint8_t> frame;
    frame.reserve(encoded_bytes(values.size(), layout));
    std::vector<float> resid;
    std::vector<signed char> q;
    for_each_segment(values.size(), layout, [&](std::size_t off,
                                                std::size_t seg) {
      const float* src = values.data() + off;
      if (delta_ && !reference.empty()) {
        resid.resize(seg);
        const float* ref = reference.data() + off;
        for (std::size_t i = 0; i < seg; ++i) resid[i] = src[i] - ref[i];
        src = resid.data();
      }
      q.assign(seg, 0);
      float scale = kNaN;  // non-finite segment → poisoned scale
      if (all_finite(src, seg)) {
        const float amax = k.absmax(src, seg);
        scale = amax / static_cast<float>(qmax_);
        if (scale > 0.0f) {
          k.quantize_i8(src, q.data(), 1.0f / scale, qmax_, seg);
        }
      }
      put_scale(frame, scale);
      if (nibble_) {
        for (std::size_t i = 0; i < seg; i += 2) {
          const unsigned lo = static_cast<unsigned>(q[i] + 7);
          const unsigned hi =
              i + 1 < seg ? static_cast<unsigned>(q[i + 1] + 7) : 0u;
          frame.push_back(static_cast<std::uint8_t>(lo | (hi << 4)));
        }
      } else {
        wire::put_bytes(frame, q.data(), seg);
      }
    });
    return frame;
  }

  bool validate(std::span<const std::uint8_t> frame, std::size_t n,
                std::span<const std::size_t> layout,
                std::string* why) const override {
    if (frame.size() != encoded_bytes(n, layout)) {
      return fail(why, std::string(name()) + " frame size mismatch");
    }
    wire::Reader r(frame);
    bool ok = true;
    for_each_segment(n, layout, [&](std::size_t, std::size_t seg) {
      const float scale = read_scale(r);
      std::vector<std::uint8_t> skip(payload_bytes(seg));
      r.raw(skip.data(), skip.size());
      if (!std::isfinite(scale) || scale < 0.0f) ok = false;
    });
    if (!ok) return fail(why, std::string(name()) + " scale not finite");
    return true;
  }

  void decode(std::span<const std::uint8_t> frame, std::span<float> out,
              std::span<const float> reference,
              std::span<const std::size_t> layout) const override {
    FEDCLUST_CHECK(frame.size() == encoded_bytes(out.size(), layout),
                   name() << " frame size mismatch");
    FEDCLUST_CHECK(!delta_ || reference.empty() ||
                       reference.size() == out.size(),
                   "delta reference size mismatch");
    const auto& k = ops::kernels();
    wire::Reader r(frame);
    std::vector<signed char> q;
    std::vector<std::uint8_t> packed;
    for_each_segment(out.size(), layout, [&](std::size_t off,
                                             std::size_t seg) {
      const float scale = read_scale(r);  // NaN scale → NaN floats below
      q.resize(seg);
      if (nibble_) {
        packed.resize(payload_bytes(seg));
        r.raw(packed.data(), packed.size());
        for (std::size_t i = 0; i < seg; ++i) {
          const unsigned u = (packed[i / 2] >> ((i % 2) * 4)) & 0xF;
          q[i] = static_cast<signed char>(static_cast<int>(u) - 7);
        }
      } else {
        r.raw(q.data(), seg);
      }
      float* dst = out.data() + off;
      k.dequantize_i8(q.data(), dst, scale, seg);
      if (delta_ && !reference.empty()) {
        const float* ref = reference.data() + off;
        for (std::size_t i = 0; i < seg; ++i) dst[i] += ref[i];
      }
    });
  }

 private:
  std::size_t payload_bytes(std::size_t seg) const {
    return nibble_ ? (seg + 1) / 2 : seg;
  }

  CodecKind kind_;
  int qmax_;
  bool nibble_;
  bool delta_;
};

// -- top-k --------------------------------------------------------------------

class TopKCodec final : public UpdateCodec {
 public:
  explicit TopKCodec(double frac) : frac_(frac) {}

  CodecKind kind() const override { return CodecKind::kTopK; }
  const char* name() const override { return "topk"; }

  std::size_t encoded_bytes(std::size_t n,
                            std::span<const std::size_t>) const override {
    return sizeof(std::uint64_t) + num_kept(n) * kPairBytes;
  }

  std::vector<std::uint8_t> encode(
      std::span<const float> values, std::span<const float> reference,
      std::span<const std::size_t> layout) const override {
    const std::size_t n = values.size();
    for_each_segment(n, layout, [](std::size_t, std::size_t) {});
    FEDCLUST_CHECK(reference.empty() || reference.size() == n,
                   "topk reference size mismatch");
    const std::size_t kept = num_kept(n);
    // Magnitude of the change each coordinate carries; NaN sorts as +inf
    // so poisoned coordinates are always selected (and then rejected by
    // validate's finite-value check instead of silently dropped).
    std::vector<float> mag(n);
    for (std::size_t i = 0; i < n; ++i) {
      const float d = reference.empty() ? values[i] : values[i] - reference[i];
      const float a = std::fabs(d);
      mag[i] = std::isnan(a) ? std::numeric_limits<float>::infinity() : a;
    }
    std::vector<std::uint32_t> idx(n);
    std::iota(idx.begin(), idx.end(), 0u);
    const auto larger = [&](std::uint32_t a, std::uint32_t b) {
      if (mag[a] != mag[b]) return mag[a] > mag[b];
      return a < b;  // ties → lower index, a total order
    };
    if (kept < n) {
      std::nth_element(idx.begin(), idx.begin() + kept, idx.end(), larger);
      idx.resize(kept);
    }
    std::sort(idx.begin(), idx.end());  // frame stores ascending indices
    std::vector<std::uint8_t> frame;
    frame.reserve(encoded_bytes(n, layout));
    wire::put_u64(frame, kept);
    for (const std::uint32_t i : idx) {
      wire::put_u32(frame, i);
      wire::put_f32(frame, std::span<const float>(&values[i], 1));
    }
    return frame;
  }

  bool validate(std::span<const std::uint8_t> frame, std::size_t n,
                std::span<const std::size_t> layout,
                std::string* why) const override {
    if (frame.size() != encoded_bytes(n, layout)) {
      return fail(why, "topk frame size mismatch");
    }
    wire::Reader r(frame);
    const std::uint64_t kept = r.u64();
    if (kept != num_kept(n)) return fail(why, "topk count mismatch");
    std::uint64_t prev = 0;
    for (std::uint64_t u = 0; u < kept; ++u) {
      const std::uint32_t i = r.u32();
      const float v = read_scale(r);
      if (i >= n) return fail(why, "topk index out of range");
      if (u > 0 && i <= prev) return fail(why, "topk indices not ascending");
      if (!std::isfinite(v)) return fail(why, "topk value not finite");
      prev = i;
    }
    return true;
  }

  void decode(std::span<const std::uint8_t> frame, std::span<float> out,
              std::span<const float> reference,
              std::span<const std::size_t> layout) const override {
    const std::size_t n = out.size();
    FEDCLUST_CHECK(frame.size() == encoded_bytes(n, layout),
                   "topk frame size mismatch");
    FEDCLUST_CHECK(reference.empty() || reference.size() == n,
                   "topk reference size mismatch");
    if (reference.empty()) {
      std::fill(out.begin(), out.end(), 0.0f);
    } else {
      std::copy(reference.begin(), reference.end(), out.begin());
    }
    wire::Reader r(frame);
    const std::uint64_t kept = r.u64();
    FEDCLUST_CHECK(kept == num_kept(n), "topk count mismatch");
    std::uint64_t prev = 0;
    for (std::uint64_t u = 0; u < kept; ++u) {
      const std::uint32_t i = r.u32();
      FEDCLUST_CHECK(i < n, "topk index out of range");
      FEDCLUST_CHECK(u == 0 || i > prev, "topk indices not ascending");
      r.f32(std::span<float>(&out[i], 1));
      prev = i;
    }
  }

 private:
  static constexpr std::size_t kPairBytes =
      sizeof(std::uint32_t) + sizeof(float);

  std::size_t num_kept(std::size_t n) const {
    if (n == 0) return 0;
    const auto want = static_cast<long long>(std::llround(
        frac_ * static_cast<double>(n)));
    const auto k = static_cast<std::size_t>(std::max(want, 1ll));
    return std::min(k, n);
  }

  double frac_;
};

// -- sign-SGD -----------------------------------------------------------------

class SignCodec final : public UpdateCodec {
 public:
  CodecKind kind() const override { return CodecKind::kSignSgd; }
  const char* name() const override { return "sign"; }

  std::size_t encoded_bytes(
      std::size_t n, std::span<const std::size_t> layout) const override {
    std::size_t total = 0;
    for_each_segment(n, layout, [&](std::size_t, std::size_t seg) {
      total += sizeof(float) + (seg + 7) / 8;
    });
    return total;
  }

  std::vector<std::uint8_t> encode(
      std::span<const float> values, std::span<const float> reference,
      std::span<const std::size_t> layout) const override {
    FEDCLUST_CHECK(reference.empty() || reference.size() == values.size(),
                   "sign reference size mismatch");
    std::vector<std::uint8_t> frame;
    frame.reserve(encoded_bytes(values.size(), layout));
    std::vector<float> resid;
    for_each_segment(values.size(), layout, [&](std::size_t off,
                                                std::size_t seg) {
      resid.resize(seg);
      for (std::size_t i = 0; i < seg; ++i) {
        const float ref = reference.empty() ? 0.0f : reference[off + i];
        resid[i] = values[off + i] - ref;
      }
      float scale = kNaN;
      std::vector<std::uint8_t> bits((seg + 7) / 8, 0u);
      if (all_finite(resid.data(), seg)) {
        double acc = 0.0;  // fixed ascending order, double accumulation
        for (std::size_t i = 0; i < seg; ++i) {
          acc += std::fabs(static_cast<double>(resid[i]));
        }
        scale = seg > 0 ? static_cast<float>(acc / static_cast<double>(seg))
                        : 0.0f;
        for (std::size_t i = 0; i < seg; ++i) {
          if (resid[i] >= 0.0f) bits[i / 8] |= (1u << (i % 8));
        }
      }
      put_scale(frame, scale);
      wire::put_bytes(frame, bits.data(), bits.size());
    });
    return frame;
  }

  bool validate(std::span<const std::uint8_t> frame, std::size_t n,
                std::span<const std::size_t> layout,
                std::string* why) const override {
    if (frame.size() != encoded_bytes(n, layout)) {
      return fail(why, "sign frame size mismatch");
    }
    wire::Reader r(frame);
    bool ok = true;
    for_each_segment(n, layout, [&](std::size_t, std::size_t seg) {
      const float scale = read_scale(r);
      std::vector<std::uint8_t> skip((seg + 7) / 8);
      r.raw(skip.data(), skip.size());
      if (!std::isfinite(scale) || scale < 0.0f) ok = false;
    });
    if (!ok) return fail(why, "sign scale not finite");
    return true;
  }

  void decode(std::span<const std::uint8_t> frame, std::span<float> out,
              std::span<const float> reference,
              std::span<const std::size_t> layout) const override {
    FEDCLUST_CHECK(frame.size() == encoded_bytes(out.size(), layout),
                   "sign frame size mismatch");
    FEDCLUST_CHECK(reference.empty() || reference.size() == out.size(),
                   "sign reference size mismatch");
    wire::Reader r(frame);
    std::vector<std::uint8_t> bits;
    for_each_segment(out.size(), layout, [&](std::size_t off,
                                             std::size_t seg) {
      const float scale = read_scale(r);  // NaN propagates into every value
      bits.resize((seg + 7) / 8);
      r.raw(bits.data(), bits.size());
      for (std::size_t i = 0; i < seg; ++i) {
        const float ref = reference.empty() ? 0.0f : reference[off + i];
        const bool up = (bits[i / 8] >> (i % 8)) & 1u;
        out[off + i] = up ? ref + scale : ref - scale;
      }
    });
  }
};

}  // namespace

std::unique_ptr<UpdateCodec> make_codec(CodecKind kind, double topk_frac) {
  switch (kind) {
    case CodecKind::kIdentity:
      return std::make_unique<IdentityCodec>();
    case CodecKind::kInt8:
      return std::make_unique<QuantCodec>(CodecKind::kInt8, 127, false, false);
    case CodecKind::kInt4:
      return std::make_unique<QuantCodec>(CodecKind::kInt4, 7, true, false);
    case CodecKind::kTopK:
      return std::make_unique<TopKCodec>(topk_frac);
    case CodecKind::kSignSgd:
      return std::make_unique<SignCodec>();
    case CodecKind::kDelta:
      return std::make_unique<QuantCodec>(CodecKind::kDelta, 127, false, true);
  }
  FEDCLUST_CHECK(false, "unknown codec kind "
                            << static_cast<unsigned>(kind));
  return nullptr;
}

const char* to_string(CodecKind kind) {
  switch (kind) {
    case CodecKind::kIdentity:
      return "identity";
    case CodecKind::kInt8:
      return "int8";
    case CodecKind::kInt4:
      return "int4";
    case CodecKind::kTopK:
      return "topk";
    case CodecKind::kSignSgd:
      return "sign";
    case CodecKind::kDelta:
      return "delta";
  }
  return "unknown";
}

bool codec_from_string(std::string_view name, CodecKind* out) {
  for (const CodecKind kind :
       {CodecKind::kIdentity, CodecKind::kInt8, CodecKind::kInt4,
        CodecKind::kTopK, CodecKind::kSignSgd, CodecKind::kDelta}) {
    if (name == to_string(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

bool valid_codec_id(std::uint16_t value) {
  return value <= static_cast<std::uint16_t>(CodecKind::kDelta);
}

void roundtrip(const UpdateCodec& codec, std::span<const float> values,
               std::span<const float> reference,
               std::span<const std::size_t> layout, std::span<float> out) {
  FEDCLUST_CHECK(out.size() == values.size(), "roundtrip size mismatch");
  const std::vector<std::uint8_t> frame =
      codec.encode(values, reference, layout);
  codec.decode(frame, out, reference, layout);
}

void signsgd_majority_vote(const float* const* updates, const double* coeff,
                           std::size_t num, const float* reference, float* out,
                           std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double ref = static_cast<double>(reference[i]);
    double vote = 0.0;
    double mag = 0.0;
    for (std::size_t u = 0; u < num; ++u) {
      const double d = static_cast<double>(updates[u][i]) - ref;
      if (d > 0.0) {
        vote += coeff[u];
      } else if (d < 0.0) {
        vote -= coeff[u];
      }
      mag += coeff[u] * std::fabs(d);
    }
    const double dir = vote > 0.0 ? 1.0 : (vote < 0.0 ? -1.0 : 0.0);
    out[i] = static_cast<float>(ref + dir * mag);
  }
}

}  // namespace fedclust::compress
