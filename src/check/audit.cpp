#include "check/audit.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "net/simulator.hpp"
#include "utils/error.hpp"

namespace fedclust::check {

void assert_all_finite(std::span<const float> values, const char* context) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    FEDCLUST_CHECK(std::isfinite(values[i]),
                   context << ": non-finite value " << values[i]
                           << " at index " << i << " of " << values.size());
  }
}

void audit_aggregation(const std::vector<std::span<const float>>& inputs,
                       const std::vector<double>& coefficients,
                       std::span<const float> output) {
  FEDCLUST_REQUIRE(!inputs.empty(), "aggregation audit over zero inputs");
  FEDCLUST_REQUIRE(inputs.size() == coefficients.size(),
                   "aggregation audit: " << inputs.size() << " inputs vs "
                                         << coefficients.size()
                                         << " coefficients");

  double coeff_sum = 0.0;
  for (const double c : coefficients) {
    FEDCLUST_CHECK(std::isfinite(c) && c >= 0.0,
                   "aggregation weight " << c << " is negative or non-finite");
    coeff_sum += c;
  }
  FEDCLUST_CHECK(std::abs(coeff_sum - 1.0) < 1e-9,
                 "aggregation weights sum to " << coeff_sum << ", not 1");

  const std::size_t dim = output.size();
  for (const auto& in : inputs) {
    FEDCLUST_CHECK(in.size() == dim, "aggregation audit: input length "
                                         << in.size() << " != output length "
                                         << dim);
  }

  for (std::size_t i = 0; i < dim; ++i) {
    float lo = std::numeric_limits<float>::infinity();
    float hi = -std::numeric_limits<float>::infinity();
    for (const auto& in : inputs) {
      FEDCLUST_CHECK(std::isfinite(in[i]),
                     "aggregation input has non-finite value " << in[i]
                                                               << " at index "
                                                               << i);
      lo = std::min(lo, in[i]);
      hi = std::max(hi, in[i]);
    }
    // The average is reduced in double and rounded once to float, so it
    // can overshoot the envelope by at most one rounding step; allow a
    // margin scaled to the envelope's magnitude.
    const float margin =
        1e-5f * std::max(1.0f, std::max(std::abs(lo), std::abs(hi)));
    FEDCLUST_CHECK(std::isfinite(output[i]) && output[i] >= lo - margin &&
                       output[i] <= hi + margin,
                   "aggregated value " << output[i] << " at index " << i
                                       << " escapes the input envelope ["
                                       << lo << ", " << hi << "]");
  }
}

void audit_cluster_partition(const std::vector<std::size_t>& labels) {
  FEDCLUST_REQUIRE(!labels.empty(), "cluster partition audit: no labels");
  const std::size_t k =
      *std::max_element(labels.begin(), labels.end()) + 1;
  FEDCLUST_CHECK(k <= labels.size(),
                 "cluster label " << k - 1 << " exceeds client count "
                                  << labels.size());
  std::vector<std::size_t> count(k, 0);
  for (const std::size_t l : labels) ++count[l];
  for (std::size_t c = 0; c < k; ++c) {
    FEDCLUST_CHECK(count[c] > 0,
                   "cluster ids are not consecutive: id " << c
                                                          << " of " << k
                                                          << " has no members");
  }
}

void audit_dendrogram_monotone(const cluster::Dendrogram& dendrogram,
                               double tolerance) {
  const auto& merges = dendrogram.merges;
  for (std::size_t m = 1; m < merges.size(); ++m) {
    FEDCLUST_CHECK(merges[m].distance >= merges[m - 1].distance - tolerance,
                   "dendrogram inversion at merge " << m << ": distance "
                                                    << merges[m].distance
                                                    << " < previous "
                                                    << merges[m - 1].distance);
  }
  for (std::size_t m = 0; m < merges.size(); ++m) {
    FEDCLUST_CHECK(std::isfinite(merges[m].distance) &&
                       merges[m].distance >= 0.0,
                   "merge " << m << " has invalid distance "
                            << merges[m].distance);
  }
}

void audit_comm_parity(std::uint64_t metered_download,
                       std::uint64_t metered_upload,
                       const std::vector<net::Event>& log) {
  const net::DeliveredBytes view = net::delivered_bytes(log);
  FEDCLUST_CHECK(view.download == metered_download,
                 "comm meter download " << metered_download
                                        << " != event-log delivered "
                                        << view.download);
  FEDCLUST_CHECK(view.upload == metered_upload,
                 "comm meter upload " << metered_upload
                                      << " != event-log delivered "
                                      << view.upload);
}

std::uint64_t weights_fingerprint(std::span<const float> weights,
                                  std::uint64_t h) {
  for (const float w : weights) {
    const std::uint32_t bits = std::bit_cast<std::uint32_t>(w);
    for (int i = 0; i < 4; ++i) {
      h ^= (bits >> (8 * i)) & 0xff;
      h *= 0x100000001b3ull;
    }
  }
  return h;
}

std::uint64_t weights_fingerprint(
    const std::vector<std::vector<float>>& weight_vectors, std::uint64_t h) {
  for (const auto& w : weight_vectors) {
    const std::uint64_t len = w.size();
    for (int i = 0; i < 8; ++i) {
      h ^= (len >> (8 * i)) & 0xff;
      h *= 0x100000001b3ull;
    }
    h = weights_fingerprint(std::span<const float>(w), h);
  }
  return h;
}

}  // namespace fedclust::check
