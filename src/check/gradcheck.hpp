// Central finite-difference verification of the hand-written backward
// passes in src/nn.
//
// Method: for a layer f with input x and parameters θ, draw a random
// cotangent u over the output. One analytic forward/backward pair yields
// the vector-Jacobian products uᵀ·∂f/∂x (the returned input gradient)
// and uᵀ·∂f/∂θ (the accumulated parameter gradients). Each is then
// probed along random directions v: the analytic directional derivative
// ⟨uᵀJ, v⟩ must match the central difference
//
//     ( Σ u ⊙ f(x + εv)  −  Σ u ⊙ f(x − εv) ) / 2ε
//
// with all reductions accumulated in float64 (forward passes stay
// float32 — that is what is being verified). Stochastic layers are
// frozen by reseed()-ing before every forward, so Dropout is checked
// against a fixed mask; BatchNorm2d is checked in train mode (running
// statistics mutate across probes but never feed the train-mode output).
//
// Tolerances: with ε = 1e-3 and O(1) activations, float32 forward noise
// contributes ~1e-4 relative error to the quotient; the default 1e-2
// tolerance leaves an order of magnitude of headroom while still
// catching any structurally wrong backward (a missing term or factor
// shows up as O(1) relative error).
#pragma once

#include <span>
#include <string>

#include "nn/model.hpp"

namespace fedclust::check {

struct GradCheckConfig {
  /// Central-difference step, applied in float32.
  double epsilon = 1e-3;
  /// Maximum allowed relative error, |a−f| / max(|a|, |f|, 1).
  double tolerance = 1e-2;
  /// Random probe directions per checked quantity (input and each
  /// parameter get this many).
  std::size_t directions = 2;
  /// Seed for cotangents, probe directions, and frozen dropout masks.
  std::uint64_t seed = 0x6ead;
};

struct GradCheckResult {
  double max_rel_error = 0.0;  ///< worst relative error seen
  std::size_t checks = 0;      ///< directional comparisons performed
  std::string worst;           ///< description of the worst comparison
  bool passed = false;         ///< max_rel_error < tolerance
};

/// Verifies `layer.backward` against central differences for the layer
/// input and every parameter (parameters whose analytic gradient is
/// identically zero — batch-norm running statistics — check trivially).
/// `train` selects the forward mode; Dropout and BatchNorm2d must be
/// checked with train = true.
GradCheckResult check_layer(nn::Layer& layer, const Tensor& input,
                            const GradCheckConfig& config = {},
                            bool train = true);

/// Verifies softmax_cross_entropy's logit gradient against central
/// differences of the scalar loss on a random (batch × classes) problem.
GradCheckResult check_softmax_cross_entropy(std::size_t batch,
                                            std::size_t classes,
                                            const GradCheckConfig& config = {});

/// Whole-model check: Model::flat_grads() (the gradient the FL engine
/// would ship) against the central-difference directional derivative of
/// the softmax cross-entropy loss along random weight directions.
/// Runs in train mode with dropout masks frozen per evaluation.
GradCheckResult check_model(nn::Model& model, const Tensor& input,
                            std::span<const std::int32_t> labels,
                            const GradCheckConfig& config = {});

}  // namespace fedclust::check
