// Runtime invariant audits for the FL engine.
//
// Each function here verifies one invariant the rest of the system
// silently relies on, throwing fedclust::Error with a precise message on
// violation. They are cheap enough to run on every round of a simulated
// federation; fl::Federation wires them in behind FederationConfig::audit
// (off by default, so production runs pay nothing).
//
// This library sits BELOW src/fl in the dependency order — it knows
// about tensors, dendrograms, and network event logs, but takes engine
// state (aggregation inputs, metered byte totals) as plain values so the
// engine can link against it without a cycle.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cluster/hierarchical.hpp"
#include "net/event.hpp"

namespace fedclust::check {

/// Throws if any value is NaN or ±Inf. `context` names the vector in the
/// error message ("client 3 update weights").
void assert_all_finite(std::span<const float> values, const char* context);

/// Audits one weighted-average aggregation:
///  * the coefficients are non-negative and sum to 1 (within 1e-9);
///  * every output coordinate lies inside the per-coordinate min/max
///    envelope of the inputs (within a float-rounding margin) — a convex
///    combination can never leave it;
///  * inputs and output are finite.
/// All inputs must have the same length as `output`.
void audit_aggregation(const std::vector<std::span<const float>>& inputs,
                       const std::vector<double>& coefficients,
                       std::span<const float> output);

/// Audits a flat clustering: labels must be consecutive integers
/// 0..K-1 with every id in that range used at least once — i.e. the
/// labels form a partition of the member clients. (This is the contract
/// of Dendrogram::cut_*; methods like IFCA that legitimately leave
/// clusters empty must not be audited with this.)
void audit_cluster_partition(const std::vector<std::size_t>& labels);

/// Audits dendrogram monotonicity: merge distances must be non-decreasing
/// (within `tolerance`). This holds for single/complete/average/ward
/// linkage — the four this repo implements — and is what
/// suggest_threshold's largest-gap scan assumes.
void audit_dendrogram_monotone(const cluster::Dendrogram& dendrogram,
                               double tolerance = 1e-9);

/// Audits CommMeter-vs-event-log byte parity: the metered totals must
/// equal the delivered traffic of the simulator's event log exactly.
void audit_comm_parity(std::uint64_t metered_download,
                       std::uint64_t metered_upload,
                       const std::vector<net::Event>& log);

/// FNV-1a offset basis — seed value for the fingerprint chain below.
inline constexpr std::uint64_t kFingerprintSeed = 0xcbf29ce484222325ull;

/// FNV-1a hash over the bit patterns of a float span, chained from `h`.
/// Two weight vectors fingerprint equal iff they are bit-identical —
/// the primitive behind the determinism audit (same idiom as
/// net::fingerprint over event logs).
std::uint64_t weights_fingerprint(std::span<const float> weights,
                                  std::uint64_t h = kFingerprintSeed);

/// Chained fingerprint over a set of weight vectors (cluster models,
/// per-client models); also mixes each vector's length.
std::uint64_t weights_fingerprint(
    const std::vector<std::vector<float>>& weight_vectors,
    std::uint64_t h = kFingerprintSeed);

}  // namespace fedclust::check
