// Determinism audit: proves an algorithm's trajectory is bit-identical
// across kernel-thread counts.
//
// The engine documents a strong claim (federation.hpp): all randomness
// derives from config.seed through splittable per-(client, round)
// streams, and the blocked-GEMM kernel pool splits output rows into
// disjoint ranges, so results are bit-identical regardless of thread
// count. This harness is the test of that claim. It runs the same
// algorithm against freshly built federations that differ ONLY in
// config.kernel_threads and compares, round by evaluated round, the
// FNV-1a fingerprint of the aggregated weights (RoundMetrics::weights_fp)
// plus the bit patterns of the accuracy/loss metrics — any reduction
// reordering, data race, or uninitialized read shows up as a fingerprint
// divergence in the first affected round.
//
// Header-only on purpose: fedclust_check sits below fedclust_fl in the
// link order (the engine calls the audit functions), so the harness —
// which drives fl::Algorithm — must not add code to the check library.
#pragma once

#include <bit>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "fl/algorithm.hpp"
#include "fl/federation.hpp"

namespace fedclust::check {

/// Outcome of one determinism comparison.
struct DeterminismReport {
  bool identical = true;
  /// Human-readable descriptions of every divergence found (empty when
  /// identical). Each names the kernel-thread count, round, and field.
  std::vector<std::string> mismatches;
  /// Evaluated rounds compared per run.
  std::size_t rounds_compared = 0;
  /// The kernel-thread counts exercised, in order (first is reference).
  std::vector<std::size_t> kernel_thread_counts;
};

/// Runs a fresh algorithm instance from `make_algorithm` against a fresh
/// federation from `make_federation(kernel_threads)` for each entry of
/// `kernel_thread_counts`, comparing every evaluated round's weight
/// fingerprint and metric bit patterns against the first run. The
/// factories must build identically configured objects apart from the
/// kernel-thread count (same seed, same data, same model init).
///
/// The factories are template parameters (not std::function) because
/// fl::Federation owns a ThreadPool and is neither copyable nor movable:
/// `make_federation` must return it as a prvalue, which only guaranteed
/// copy elision through a direct call can preserve.
template <typename AlgorithmFactory, typename FederationFactory>
DeterminismReport determinism_audit(
    AlgorithmFactory&& make_algorithm, FederationFactory&& make_federation,
    std::size_t rounds,
    const std::vector<std::size_t>& kernel_thread_counts) {
  FEDCLUST_REQUIRE(kernel_thread_counts.size() >= 2,
                   "determinism audit needs at least two thread counts");
  DeterminismReport report;
  report.kernel_thread_counts = kernel_thread_counts;

  const auto run_one = [&](std::size_t kernel_threads) {
    fl::Federation federation = make_federation(kernel_threads);
    return make_algorithm()->run(federation, rounds);
  };

  const auto bits = [](double x) { return std::bit_cast<std::uint64_t>(x); };
  const fl::RunResult reference = run_one(kernel_thread_counts.front());
  report.rounds_compared = reference.rounds.size();

  for (std::size_t t = 1; t < kernel_thread_counts.size(); ++t) {
    const std::size_t kt = kernel_thread_counts[t];
    const fl::RunResult other = run_one(kt);
    const auto mismatch = [&](const std::string& what) {
      report.identical = false;
      std::ostringstream oss;
      oss << reference.algorithm << " kernel_threads "
          << kernel_thread_counts.front() << " vs " << kt << ": " << what;
      report.mismatches.push_back(oss.str());
    };

    if (other.rounds.size() != reference.rounds.size()) {
      std::ostringstream oss;
      oss << other.rounds.size() << " evaluated rounds vs "
          << reference.rounds.size();
      mismatch(oss.str());
      continue;
    }
    for (std::size_t r = 0; r < reference.rounds.size(); ++r) {
      const fl::RoundMetrics& a = reference.rounds[r];
      const fl::RoundMetrics& b = other.rounds[r];
      std::ostringstream oss;
      if (a.weights_fp != b.weights_fp) {
        oss << "round " << a.round << " weight fingerprint " << std::hex
            << b.weights_fp << " vs " << a.weights_fp;
      } else if (bits(a.acc_mean) != bits(b.acc_mean) ||
                 bits(a.acc_std) != bits(b.acc_std)) {
        oss << "round " << a.round << " accuracy bits differ (" << b.acc_mean
            << " vs " << a.acc_mean << ")";
      } else if (bits(a.train_loss) != bits(b.train_loss)) {
        oss << "round " << a.round << " train-loss bits differ ("
            << b.train_loss << " vs " << a.train_loss << ")";
      } else if (a.cum_upload != b.cum_upload ||
                 a.cum_download != b.cum_download) {
        oss << "round " << a.round << " byte counters differ";
      } else if (a.num_clusters != b.num_clusters) {
        oss << "round " << a.round << " cluster count " << b.num_clusters
            << " vs " << a.num_clusters;
      } else {
        continue;
      }
      mismatch(oss.str());
      break;  // later rounds diverge as a consequence; report the first
    }
    if (other.cluster_labels != reference.cluster_labels) {
      mismatch("final cluster labels differ");
    }
  }
  return report;
}

}  // namespace fedclust::check
