#include "check/gradcheck.hpp"

#include <cmath>
#include <sstream>

#include "nn/loss.hpp"
#include "utils/rng.hpp"

namespace fedclust::check {
namespace {

Tensor random_direction(const Shape& shape, Rng& rng) {
  Tensor v(shape);
  for (auto& x : v.flat()) {
    x = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return v;
}

/// Σ a ⊙ b accumulated in float64.
double dot64(std::span<const float> a, std::span<const float> b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    s += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return s;
}

struct Recorder {
  GradCheckResult result;
  double tolerance;

  void record(double analytic, double fd, const char* what,
              std::size_t direction) {
    const double denom =
        std::max(std::max(std::abs(analytic), std::abs(fd)), 1.0);
    const double rel = std::abs(analytic - fd) / denom;
    ++result.checks;
    if (rel > result.max_rel_error) {
      result.max_rel_error = rel;
      std::ostringstream oss;
      oss << what << " direction " << direction << ": analytic " << analytic
          << " vs central-difference " << fd << " (rel " << rel << ")";
      result.worst = oss.str();
    }
  }

  GradCheckResult finish() {
    result.passed = result.max_rel_error < tolerance;
    return result;
  }
};

}  // namespace

GradCheckResult check_layer(nn::Layer& layer, const Tensor& input,
                            const GradCheckConfig& config, bool train) {
  Rng rng(config.seed);
  const std::uint64_t mask_seed = rng();
  const float eps = static_cast<float>(config.epsilon);

  // Frozen-mask evaluation of Σ u ⊙ f(x): every forward re-arms the
  // layer's RNG (no-op for deterministic layers) so stochastic layers
  // see the same mask on the analytic pass and on every FD probe.
  const auto weighted_output = [&](const Tensor& x, const Tensor& u) {
    layer.reseed(mask_seed);
    const Tensor y = layer.forward(x, train);
    FEDCLUST_CHECK(y.numel() == u.numel(),
                   "layer output shape changed between probes");
    return dot64(y.flat(), u.flat());
  };

  // Analytic pass: forward, then backward with cotangent u.
  layer.reseed(mask_seed);
  const Tensor y0 = layer.forward(input, train);
  Tensor u = random_direction(y0.shape(), rng);
  for (nn::Param* p : layer.params()) p->grad.zero();
  const Tensor grad_input = layer.backward(u);
  FEDCLUST_CHECK(grad_input.same_shape(input),
                 "backward returned a gradient of the wrong shape");

  Recorder rec{.result = {}, .tolerance = config.tolerance};

  // Input directions.
  for (std::size_t d = 0; d < config.directions; ++d) {
    const Tensor v = random_direction(input.shape(), rng);
    const double analytic = dot64(grad_input.flat(), v.flat());
    Tensor xp = input;
    xp.axpy(eps, v);
    Tensor xm = input;
    xm.axpy(-eps, v);
    const double fd =
        (weighted_output(xp, u) - weighted_output(xm, u)) / (2.0 * eps);
    rec.record(analytic, fd, "input", d);
  }

  // Parameter directions, one parameter at a time.
  for (nn::Param* p : layer.params()) {
    for (std::size_t d = 0; d < config.directions; ++d) {
      const Tensor v = random_direction(p->value.shape(), rng);
      const double analytic = dot64(p->grad.flat(), v.flat());
      const Tensor saved = p->value;
      p->value.axpy(eps, v);
      const double plus = weighted_output(input, u);
      p->value = saved;
      p->value.axpy(-eps, v);
      const double minus = weighted_output(input, u);
      p->value = saved;
      const double fd = (plus - minus) / (2.0 * eps);
      rec.record(analytic, fd, p->name.c_str(), d);
    }
  }
  return rec.finish();
}

GradCheckResult check_softmax_cross_entropy(std::size_t batch,
                                            std::size_t classes,
                                            const GradCheckConfig& config) {
  Rng rng(config.seed);
  Tensor logits = random_direction({batch, classes}, rng);
  logits *= 3.0f;  // spread the softmax away from uniform
  std::vector<std::int32_t> labels(batch);
  for (auto& y : labels) {
    y = static_cast<std::int32_t>(rng.uniform_int(classes));
  }

  const nn::LossResult analytic = nn::softmax_cross_entropy(logits, labels);
  const float eps = static_cast<float>(config.epsilon);
  Recorder rec{.result = {}, .tolerance = config.tolerance};

  for (std::size_t d = 0; d < config.directions; ++d) {
    const Tensor v = random_direction(logits.shape(), rng);
    const double a = dot64(analytic.grad_logits.flat(), v.flat());
    Tensor lp = logits;
    lp.axpy(eps, v);
    Tensor lm = logits;
    lm.axpy(-eps, v);
    const double fd =
        (static_cast<double>(nn::softmax_cross_entropy_loss(lp, labels)) -
         static_cast<double>(nn::softmax_cross_entropy_loss(lm, labels))) /
        (2.0 * eps);
    rec.record(a, fd, "logits", d);
  }
  return rec.finish();
}

GradCheckResult check_model(nn::Model& model, const Tensor& input,
                            std::span<const std::int32_t> labels,
                            const GradCheckConfig& config) {
  Rng rng(config.seed);
  const std::uint64_t mask_seed = rng();
  const std::vector<float> base = model.flat_weights();
  const float eps = static_cast<float>(config.epsilon);

  const auto loss_at = [&](const std::vector<float>& w) {
    model.set_flat_weights(w);
    model.reseed_dropout(mask_seed);
    const Tensor logits = model.forward(input, /*train=*/true);
    return static_cast<double>(nn::softmax_cross_entropy_loss(logits, labels));
  };

  // Analytic flat gradient — the exact vector fl::train_local descends
  // along and tests ship via Model::flat_grads().
  model.reseed_dropout(mask_seed);
  model.zero_grad();
  const Tensor logits = model.forward(input, /*train=*/true);
  const nn::LossResult loss = nn::softmax_cross_entropy(logits, labels);
  model.backward(loss.grad_logits);
  const std::vector<float> grad = model.flat_grads();

  Recorder rec{.result = {}, .tolerance = config.tolerance};
  std::vector<float> probe(base.size());
  for (std::size_t d = 0; d < config.directions; ++d) {
    std::vector<float> v(base.size());
    for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
    const double analytic = dot64(grad, v);
    for (std::size_t i = 0; i < base.size(); ++i) {
      probe[i] = base[i] + eps * v[i];
    }
    const double plus = loss_at(probe);
    for (std::size_t i = 0; i < base.size(); ++i) {
      probe[i] = base[i] - eps * v[i];
    }
    const double minus = loss_at(probe);
    rec.record(analytic, (plus - minus) / (2.0 * eps), "flat weights", d);
  }
  model.set_flat_weights(base);
  return rec.finish();
}

}  // namespace fedclust::check
