// In-memory labelled image dataset with batching utilities.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/models.hpp"  // ImageSpec
#include "tensor/tensor.hpp"
#include "utils/rng.hpp"

namespace fedclust::data {

using nn::ImageSpec;

/// A batch ready to feed a model: images (B, C, H, W) + labels (B).
struct Batch {
  Tensor images;
  std::vector<std::int32_t> labels;

  std::size_t size() const { return labels.size(); }
};

/// Owning container of samples with uniform geometry.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(ImageSpec spec) : spec_(spec) {}

  const ImageSpec& spec() const { return spec_; }
  std::size_t size() const { return labels_.size(); }
  bool empty() const { return labels_.empty(); }

  /// Appends one sample; image numel must match the spec.
  void add(const Tensor& image, std::int32_t label);

  std::int32_t label(std::size_t i) const;
  /// Relabels sample i in place (drift scenarios rewrite labels on a
  /// copied shard; pixels are immutable).
  void set_label(std::size_t i, std::int32_t label);
  /// Copies sample i's pixels into a (C, H, W) tensor.
  Tensor image(std::size_t i) const;

  /// Gathers the given sample indices into one batch.
  Batch gather(std::span<const std::size_t> indices) const;

  /// The whole dataset as a single batch.
  Batch all() const;

  /// Samples per class (size = spec.classes).
  std::vector<std::size_t> label_histogram() const;

  /// Builds a new dataset from a subset of this one's indices.
  Dataset subset(std::span<const std::size_t> indices) const;

  /// Splits into (train, test) with `test_fraction` of every class kept
  /// for test (stratified so local test sets mirror local label skew —
  /// the evaluation protocol of Table I).
  std::pair<Dataset, Dataset> stratified_split(double test_fraction,
                                               Rng& rng) const;

 private:
  ImageSpec spec_;
  std::vector<float> pixels_;  // samples back to back, CHW each
  std::vector<std::int32_t> labels_;

  std::size_t sample_numel() const {
    return spec_.channels * spec_.height * spec_.width;
  }
};

/// Iterates a dataset in shuffled mini-batches; reshuffles each epoch.
class BatchIterator {
 public:
  BatchIterator(const Dataset& dataset, std::size_t batch_size, Rng rng);

  /// Returns the next mini-batch, starting a new shuffled epoch when the
  /// previous one is exhausted. The final batch of an epoch may be
  /// smaller than batch_size.
  Batch next();

  /// Number of batches per epoch.
  std::size_t batches_per_epoch() const;

 private:
  const Dataset& dataset_;
  std::size_t batch_size_;
  Rng rng_;
  std::vector<std::size_t> order_;
  std::size_t cursor_ = 0;

  void reshuffle();
};

}  // namespace fedclust::data
