#include "data/dataset.hpp"

#include <algorithm>

namespace fedclust::data {

void Dataset::add(const Tensor& image, std::int32_t label) {
  FEDCLUST_REQUIRE(image.numel() == sample_numel(),
                   "image numel " << image.numel() << " != spec numel "
                                  << sample_numel());
  FEDCLUST_REQUIRE(label >= 0 &&
                       static_cast<std::size_t>(label) < spec_.classes,
                   "label " << label << " out of range");
  const auto f = image.flat();
  pixels_.insert(pixels_.end(), f.begin(), f.end());
  labels_.push_back(label);
}

std::int32_t Dataset::label(std::size_t i) const {
  FEDCLUST_REQUIRE(i < labels_.size(), "sample index out of range");
  return labels_[i];
}

void Dataset::set_label(std::size_t i, std::int32_t label) {
  FEDCLUST_REQUIRE(i < labels_.size(), "sample index out of range");
  FEDCLUST_REQUIRE(label >= 0 &&
                       static_cast<std::size_t>(label) < spec_.classes,
                   "label " << label << " out of range");
  labels_[i] = label;
}

Tensor Dataset::image(std::size_t i) const {
  FEDCLUST_REQUIRE(i < labels_.size(), "sample index out of range");
  const std::size_t n = sample_numel();
  std::vector<float> buf(pixels_.begin() + static_cast<std::ptrdiff_t>(i * n),
                         pixels_.begin() +
                             static_cast<std::ptrdiff_t>((i + 1) * n));
  return Tensor({spec_.channels, spec_.height, spec_.width}, std::move(buf));
}

Batch Dataset::gather(std::span<const std::size_t> indices) const {
  FEDCLUST_REQUIRE(!indices.empty(), "cannot gather an empty batch");
  const std::size_t n = sample_numel();
  Batch batch;
  batch.images =
      Tensor({indices.size(), spec_.channels, spec_.height, spec_.width});
  batch.labels.reserve(indices.size());
  float* out = batch.images.data();
  for (std::size_t bi = 0; bi < indices.size(); ++bi) {
    const std::size_t i = indices[bi];
    FEDCLUST_REQUIRE(i < labels_.size(), "gather index out of range");
    std::copy_n(pixels_.data() + i * n, n, out + bi * n);
    batch.labels.push_back(labels_[i]);
  }
  return batch;
}

Batch Dataset::all() const {
  std::vector<std::size_t> idx(size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  return gather(idx);
}

std::vector<std::size_t> Dataset::label_histogram() const {
  std::vector<std::size_t> hist(spec_.classes, 0);
  for (std::int32_t y : labels_) ++hist[static_cast<std::size_t>(y)];
  return hist;
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out(spec_);
  const std::size_t n = sample_numel();
  out.pixels_.reserve(indices.size() * n);
  out.labels_.reserve(indices.size());
  for (std::size_t i : indices) {
    FEDCLUST_REQUIRE(i < labels_.size(), "subset index out of range");
    out.pixels_.insert(out.pixels_.end(), pixels_.begin() + static_cast<std::ptrdiff_t>(i * n),
                       pixels_.begin() + static_cast<std::ptrdiff_t>((i + 1) * n));
    out.labels_.push_back(labels_[i]);
  }
  return out;
}

std::pair<Dataset, Dataset> Dataset::stratified_split(double test_fraction,
                                                      Rng& rng) const {
  FEDCLUST_REQUIRE(test_fraction >= 0.0 && test_fraction < 1.0,
                   "test_fraction must be in [0, 1)");
  std::vector<std::vector<std::size_t>> by_class(spec_.classes);
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    by_class[static_cast<std::size_t>(labels_[i])].push_back(i);
  }
  std::vector<std::size_t> train_idx;
  std::vector<std::size_t> test_idx;
  for (auto& cls : by_class) {
    rng.shuffle(cls);
    // Round to nearest but always leave at least one training sample per
    // represented class so every client can learn its own labels.
    std::size_t n_test = static_cast<std::size_t>(
        test_fraction * static_cast<double>(cls.size()) + 0.5);
    if (!cls.empty() && n_test >= cls.size()) n_test = cls.size() - 1;
    for (std::size_t i = 0; i < cls.size(); ++i) {
      (i < n_test ? test_idx : train_idx).push_back(cls[i]);
    }
  }
  // Keep deterministic ordering independent of class interleaving.
  std::sort(train_idx.begin(), train_idx.end());
  std::sort(test_idx.begin(), test_idx.end());
  return {subset(train_idx), subset(test_idx)};
}

BatchIterator::BatchIterator(const Dataset& dataset, std::size_t batch_size,
                             Rng rng)
    : dataset_(dataset), batch_size_(batch_size), rng_(rng) {
  FEDCLUST_REQUIRE(batch_size_ > 0, "batch size must be positive");
  FEDCLUST_REQUIRE(!dataset_.empty(), "cannot iterate an empty dataset");
  order_.resize(dataset_.size());
  for (std::size_t i = 0; i < order_.size(); ++i) order_[i] = i;
  reshuffle();
}

void BatchIterator::reshuffle() {
  rng_.shuffle(order_);
  cursor_ = 0;
}

Batch BatchIterator::next() {
  if (cursor_ >= order_.size()) reshuffle();
  const std::size_t take = std::min(batch_size_, order_.size() - cursor_);
  const std::span<const std::size_t> window(order_.data() + cursor_, take);
  cursor_ += take;
  return dataset_.gather(window);
}

std::size_t BatchIterator::batches_per_epoch() const {
  return (dataset_.size() + batch_size_ - 1) / batch_size_;
}

}  // namespace fedclust::data
