#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>

namespace fedclust::data {
namespace {

/// Fills a (C,H,W) tensor with a smooth zero-mean random field: a sum of
/// `waves` random 2-D cosines per channel, normalized to unit variance.
void fill_smooth_field(Tensor& t, const ImageSpec& img, std::size_t waves,
                       Rng& rng) {
  const std::size_t h = img.height, w = img.width;
  for (std::size_t c = 0; c < img.channels; ++c) {
    float* plane = t.data() + c * h * w;
    std::fill_n(plane, h * w, 0.0f);
    for (std::size_t k = 0; k < waves; ++k) {
      // Low spatial frequencies only — keeps the field smooth so that
      // convolutions with small kernels can pick the structure up.
      const double fu = rng.uniform(0.5, 3.5);
      const double fv = rng.uniform(0.5, 3.5);
      const double phase = rng.uniform(0.0, 2.0 * M_PI);
      const double amp = rng.uniform(0.5, 1.0);
      for (std::size_t y = 0; y < h; ++y) {
        for (std::size_t x = 0; x < w; ++x) {
          plane[y * w + x] += static_cast<float>(
              amp * std::cos(2.0 * M_PI *
                                 (fu * static_cast<double>(x) / static_cast<double>(w) +
                                  fv * static_cast<double>(y) / static_cast<double>(h)) +
                             phase));
        }
      }
    }
    // Normalize the channel to zero mean, unit variance.
    double mean = 0.0;
    for (std::size_t i = 0; i < h * w; ++i) mean += plane[i];
    mean /= static_cast<double>(h * w);
    double var = 0.0;
    for (std::size_t i = 0; i < h * w; ++i) {
      plane[i] -= static_cast<float>(mean);
      var += static_cast<double>(plane[i]) * plane[i];
    }
    var /= static_cast<double>(h * w);
    const float inv = var > 0.0 ? static_cast<float>(1.0 / std::sqrt(var)) : 1.0f;
    for (std::size_t i = 0; i < h * w; ++i) plane[i] *= inv;
  }
}

}  // namespace

std::string to_string(SyntheticKind kind) {
  switch (kind) {
    case SyntheticKind::kCifar10:
      return "cifar10";
    case SyntheticKind::kFmnist:
      return "fmnist";
    case SyntheticKind::kSvhn:
      return "svhn";
  }
  FEDCLUST_CHECK(false, "unknown SyntheticKind");
}

SyntheticKind synthetic_kind_from_string(const std::string& name) {
  if (name == "cifar10") return SyntheticKind::kCifar10;
  if (name == "fmnist") return SyntheticKind::kFmnist;
  if (name == "svhn") return SyntheticKind::kSvhn;
  FEDCLUST_CHECK(false, "unknown dataset '" << name
                                            << "' (cifar10|fmnist|svhn)");
}

SyntheticSpec SyntheticSpec::for_kind(SyntheticKind kind) {
  SyntheticSpec s;
  switch (kind) {
    case SyntheticKind::kFmnist:
      // Easiest of the three, but classes still share a large common
      // component: 10-way discrimination needs real capacity while a
      // 2-4-way (per-cluster) problem stays easy — the regime in which
      // the paper's Dir(0.1) results live.
      s.image = {1, 28, 28, 10};
      s.class_correlation = 0.35;
      s.max_shift = 2;
      s.distractor = 0.5;
      s.noise = 0.35;
      s.modes = 2;
      break;
    case SyntheticKind::kSvhn:
      // Middle: color, strongly correlated classes, more clutter.
      s.image = {3, 32, 32, 10};
      s.class_correlation = 0.60;
      s.max_shift = 3;
      s.distractor = 0.8;
      s.noise = 0.5;
      s.modes = 3;
      break;
    case SyntheticKind::kCifar10:
      // Hardest: near-degenerate class prototypes, heavy clutter/noise.
      s.image = {3, 32, 32, 10};
      s.class_correlation = 0.70;
      s.max_shift = 4;
      s.distractor = 0.9;
      s.noise = 0.55;
      s.modes = 4;
      break;
  }
  return s;
}

SyntheticGenerator::SyntheticGenerator(SyntheticKind kind, std::uint64_t seed)
    : SyntheticGenerator(SyntheticSpec::for_kind(kind), seed) {}

SyntheticGenerator::SyntheticGenerator(SyntheticSpec spec, std::uint64_t seed)
    : spec_(spec) {
  FEDCLUST_REQUIRE(spec_.image.classes > 0, "need at least one class");
  build_prototypes(seed);
}

void SyntheticGenerator::build_prototypes(std::uint64_t seed) {
  Rng proto_rng = Rng(seed).split(0xbeef);

  // Shared component: the part of every prototype that carries no class
  // information; a large rho makes classes overlap.
  Tensor shared({spec_.image.channels, spec_.image.height, spec_.image.width});
  fill_smooth_field(shared, spec_.image, spec_.waves, proto_rng);

  const double rho = spec_.class_correlation;
  const float w_shared = static_cast<float>(std::sqrt(rho));
  const float w_own = static_cast<float>(std::sqrt(1.0 - rho));

  prototypes_.clear();
  prototypes_.reserve(spec_.image.classes * spec_.modes);
  for (std::size_t c = 0; c < spec_.image.classes; ++c) {
    for (std::size_t m = 0; m < spec_.modes; ++m) {
      Tensor own(
          {spec_.image.channels, spec_.image.height, spec_.image.width});
      fill_smooth_field(own, spec_.image, spec_.waves, proto_rng);
      own *= w_own;
      own.axpy(w_shared, shared);
      prototypes_.push_back(std::move(own));
    }
  }
}

const Tensor& SyntheticGenerator::prototype(std::size_t c,
                                            std::size_t m) const {
  FEDCLUST_REQUIRE(c < spec_.image.classes, "class index out of range");
  FEDCLUST_REQUIRE(m < spec_.modes, "mode index out of range");
  return prototypes_[c * spec_.modes + m];
}

Tensor SyntheticGenerator::sample(std::int32_t label, Rng& rng) const {
  FEDCLUST_REQUIRE(
      label >= 0 && static_cast<std::size_t>(label) < spec_.image.classes,
      "label out of range");
  const ImageSpec& img = spec_.image;
  const std::size_t h = img.height, w = img.width;
  // Pick one of the class's appearance modes uniformly.
  const std::size_t mode = spec_.modes > 1 ? rng.uniform_int(spec_.modes) : 0;
  const Tensor& proto =
      prototypes_[static_cast<std::size_t>(label) * spec_.modes + mode];

  Tensor out({img.channels, h, w});

  // Circularly shifted prototype: shift is the dominant intra-class
  // variation, forcing the model to learn translation-tolerant features.
  const std::size_t span = 2 * spec_.max_shift + 1;
  const std::ptrdiff_t dy = static_cast<std::ptrdiff_t>(rng.uniform_int(span)) -
                            static_cast<std::ptrdiff_t>(spec_.max_shift);
  const std::ptrdiff_t dx = static_cast<std::ptrdiff_t>(rng.uniform_int(span)) -
                            static_cast<std::ptrdiff_t>(spec_.max_shift);
  for (std::size_t c = 0; c < img.channels; ++c) {
    const float* src = proto.data() + c * h * w;
    float* dst = out.data() + c * h * w;
    for (std::size_t y = 0; y < h; ++y) {
      const std::size_t sy =
          static_cast<std::size_t>((static_cast<std::ptrdiff_t>(y) - dy +
                                    static_cast<std::ptrdiff_t>(h)) %
                                   static_cast<std::ptrdiff_t>(h));
      for (std::size_t x = 0; x < w; ++x) {
        const std::size_t sx =
            static_cast<std::size_t>((static_cast<std::ptrdiff_t>(x) - dx +
                                      static_cast<std::ptrdiff_t>(w)) %
                                     static_cast<std::ptrdiff_t>(w));
        dst[y * w + x] = src[sy * w + sx];
      }
    }
  }

  // Fresh smooth distractor field per sample (class-independent clutter).
  if (spec_.distractor > 0.0) {
    Tensor clutter({img.channels, h, w});
    fill_smooth_field(clutter, img, spec_.waves, rng);
    out.axpy(static_cast<float>(spec_.distractor), clutter);
  }

  // White pixel noise.
  if (spec_.noise > 0.0) {
    const float g = static_cast<float>(spec_.noise);
    for (auto& v : out.flat()) {
      v += g * static_cast<float>(rng.normal());
    }
  }

  // Clip to a bounded range, mirroring normalized real images.
  for (auto& v : out.flat()) v = std::clamp(v, -3.0f, 3.0f);
  return out;
}

Dataset SyntheticGenerator::generate(std::size_t n, Rng& rng) const {
  std::vector<std::size_t> counts(spec_.image.classes, n / spec_.image.classes);
  for (std::size_t i = 0; i < n % spec_.image.classes; ++i) ++counts[i];
  return generate_per_class(counts, rng);
}

Dataset SyntheticGenerator::generate_per_class(
    const std::vector<std::size_t>& counts, Rng& rng) const {
  FEDCLUST_REQUIRE(counts.size() == spec_.image.classes,
                   "counts must have one entry per class");
  // Interleave classes (round-robin) so unshuffled prefixes are balanced.
  Dataset ds(spec_.image);
  std::vector<std::size_t> remaining = counts;
  bool any = true;
  while (any) {
    any = false;
    for (std::size_t c = 0; c < remaining.size(); ++c) {
      if (remaining[c] == 0) continue;
      --remaining[c];
      any = true;
      ds.add(sample(static_cast<std::int32_t>(c), rng),
             static_cast<std::int32_t>(c));
    }
  }
  return ds;
}

std::pair<Dataset, Dataset> make_synthetic_pool(SyntheticKind kind,
                                                std::size_t train_samples,
                                                std::size_t test_samples,
                                                std::uint64_t seed) {
  const SyntheticGenerator gen(kind, seed);
  Rng train_rng = Rng(seed).split(1);
  Rng test_rng = Rng(seed).split(2);
  return {gen.generate(train_samples, train_rng),
          gen.generate(test_samples, test_rng)};
}

}  // namespace fedclust::data
