// Procedural class-conditional image generators standing in for the
// paper's CIFAR-10 / Fashion-MNIST / SVHN datasets.
//
// The evaluation environment has no network access and ships no datasets,
// so (per DESIGN.md §3) we synthesize datasets with the same geometry and
// a *difficulty ordering* matched to the paper's reported accuracies
// (FMNIST easiest, SVHN middle, CIFAR-10 hardest).
//
// Generator model, per dataset:
//  * every class c gets `modes` fixed prototype images P_{c,m}: smooth
//    random fields (sums of random 2-D cosine waves), all correlated
//    through a shared component (correlation rho). Multiple modes make a
//    class a UNION of appearances — like real image classes — so 10-way
//    discrimination is capacity-bound for a small CNN while a 2-4-way
//    (per-cluster) problem stays easy. That is exactly the regime the
//    paper's Dir(0.1) experiments live in;
//  * a sample of class c picks a mode uniformly and is
//        x = P_{c,m}  (circularly shifted by up to `max_shift` pixels)
//          + d · D  (a fresh smooth distractor field per sample)
//          + g · N  (white Gaussian pixel noise)
//    clipped to [-3, 3].
//
// Everything is deterministic given (kind, seed): prototypes derive from
// the seed, and sampling draws from a caller-provided or split Rng. The
// non-IID structure of the experiments comes from the partitioner
// (src/partition), not from the generator.
#pragma once

#include <string>

#include "data/dataset.hpp"

namespace fedclust::data {

/// Which real dataset the synthetic one emulates.
enum class SyntheticKind { kCifar10, kFmnist, kSvhn };

/// Lowercase name used in tables and CSV output ("cifar10", ...).
std::string to_string(SyntheticKind kind);
/// Parses the names produced by to_string; throws on unknown names.
SyntheticKind synthetic_kind_from_string(const std::string& name);

/// Difficulty and geometry knobs; defaults are produced by
/// `SyntheticSpec::for_kind`.
struct SyntheticSpec {
  ImageSpec image;
  double class_correlation = 0.0;  ///< rho: shared component across classes
  std::size_t max_shift = 2;       ///< max circular shift in pixels
  double distractor = 0.3;         ///< amplitude of per-sample smooth field
  double noise = 0.2;              ///< white-noise amplitude
  std::size_t waves = 6;           ///< cosine components per prototype
  std::size_t modes = 1;           ///< appearance modes per class

  static SyntheticSpec for_kind(SyntheticKind kind);
};

/// Deterministic generator with fixed per-class prototypes.
class SyntheticGenerator {
 public:
  SyntheticGenerator(SyntheticKind kind, std::uint64_t seed);
  SyntheticGenerator(SyntheticSpec spec, std::uint64_t seed);

  const SyntheticSpec& spec() const { return spec_; }
  const ImageSpec& image_spec() const { return spec_.image; }

  /// Draws one sample of class `label` using `rng`.
  Tensor sample(std::int32_t label, Rng& rng) const;

  /// Generates `n` samples with uniform labels into a Dataset.
  Dataset generate(std::size_t n, Rng& rng) const;

  /// Generates samples with the given per-class counts.
  Dataset generate_per_class(const std::vector<std::size_t>& counts,
                             Rng& rng) const;

  /// The fixed prototype of class c, mode m (for tests/analysis).
  const Tensor& prototype(std::size_t c, std::size_t m = 0) const;

 private:
  SyntheticSpec spec_;
  /// prototypes_[c * modes + m], each a (C,H,W) tensor.
  std::vector<Tensor> prototypes_;

  void build_prototypes(std::uint64_t seed);
};

/// Convenience: the full synthetic train+test pool for one emulated
/// dataset ((train, test), sizes chosen by the caller).
std::pair<Dataset, Dataset> make_synthetic_pool(SyntheticKind kind,
                                                std::size_t train_samples,
                                                std::size_t test_samples,
                                                std::uint64_t seed);

}  // namespace fedclust::data
