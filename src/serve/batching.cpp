#include "serve/batching.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <utility>

#include "tensor/ops.hpp"
#include "utils/error.hpp"

namespace fedclust::serve {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Shape of a whole batch of `rows` single-sample inputs.
Shape batched_shape(const Shape& sample, std::size_t rows) {
  Shape s = sample;
  s[0] = rows;
  return s;
}

/// Largest mixture weight, ties to the lowest cluster id.
std::size_t argmax_weight(const std::vector<double>& w) {
  std::size_t best = 0;
  for (std::size_t c = 1; c < w.size(); ++c) {
    if (w[c] > w[best]) best = c;
  }
  return best;
}

}  // namespace

BatchingEngine::BatchingEngine(const ModelRegistry& registry,
                               EngineConfig config)
    : registry_(registry), config_(config) {
  FEDCLUST_REQUIRE(config_.max_batch > 0, "max_batch must be positive");
  FEDCLUST_REQUIRE(config_.workers > 0, "need at least one worker");
  FEDCLUST_REQUIRE(config_.max_delay_ms >= 0.0,
                   "max_delay_ms must be non-negative");
  workers_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

BatchingEngine::~BatchingEngine() { stop(); }

std::future<InferenceResult> BatchingEngine::submit(
    std::uint64_t id, Tensor input, std::vector<float> features,
    double timeout_ms) {
  FEDCLUST_REQUIRE(input.rank() >= 2 && input.dim(0) == 1,
                   "a request carries one sample: dim 0 must be 1, got "
                       << shape_to_string(input.shape()));
  Request req;
  req.id = id;
  req.input = std::move(input);
  req.features = std::move(features);
  req.enqueued = Clock::now();
  const double budget =
      timeout_ms > 0.0 ? timeout_ms : config_.default_timeout_ms;
  if (budget > 0.0) {
    req.has_deadline = true;
    req.deadline = req.enqueued + std::chrono::duration_cast<Clock::duration>(
                                      std::chrono::duration<double, std::milli>(
                                          budget));
  }
  std::future<InferenceResult> future = req.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    FEDCLUST_REQUIRE(!stopping_, "submit() after stop()");
    if (config_.max_queue != 0 && queue_.size() >= config_.max_queue) {
      {
        std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        ++stats_.rejected;
      }
      throw QueueFullError(
          "serving queue full: " + std::to_string(queue_.size()) +
          " requests already waiting (max_queue=" +
          std::to_string(config_.max_queue) + "); request " +
          std::to_string(id) + " rejected");
    }
    queue_.push_back(std::move(req));
  }
  cv_.notify_one();
  return future;
}

InferenceResult BatchingEngine::infer(std::uint64_t id, const Tensor& input,
                                      std::span<const float> features) {
  FEDCLUST_REQUIRE(input.rank() >= 2 && input.dim(0) == 1,
                   "a request carries one sample: dim 0 must be 1, got "
                       << shape_to_string(input.shape()));
  std::vector<Request> batch(1);
  batch[0].id = id;
  batch[0].input = input;
  batch[0].features.assign(features.begin(), features.end());
  batch[0].enqueued = Clock::now();
  std::future<InferenceResult> future = batch[0].promise.get_future();

  std::lock_guard<std::mutex> lock(reference_mutex_);
  refresh(reference_);
  process_batch(reference_, batch);
  return future.get();
}

void BatchingEngine::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

EngineStats BatchingEngine::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void BatchingEngine::worker_loop() {
  WorkerState state;
  std::vector<Request> batch;
  std::vector<Request> expired;
  // Pops the queue head into `batch` unless its deadline already passed,
  // in which case it lands in `expired` (failed outside the lock below).
  // Returns whether the request was still live.
  const auto take_front = [&](Clock::time_point now) {
    Request req = std::move(queue_.front());
    queue_.pop_front();
    const bool live = !req.has_deadline || req.deadline > now;
    (live ? batch : expired).push_back(std::move(req));
    return live;
  };
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and nothing left to drain

      // Shed stale heads until a live request opens the batch (or the
      // queue runs dry — then fail the expired ones and wait again).
      const Clock::time_point now = Clock::now();
      while (!queue_.empty() && batch.empty()) take_front(now);
      if (!batch.empty()) {
        const auto close_at =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(
                                   config_.max_delay_ms));
        while (batch.size() < config_.max_batch) {
          if (!queue_.empty()) {
            take_front(Clock::now());
            continue;
          }
          // While draining for shutdown there is no point waiting for
          // stragglers — no new producer is coming.
          if (stopping_ || config_.max_delay_ms <= 0.0) break;
          if (!cv_.wait_until(lock, close_at, [this] {
                return stopping_ || !queue_.empty();
              })) {
            break;  // delay budget spent
          }
        }
      }
    }
    if (!expired.empty()) {
      {
        std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        stats_.timeouts += expired.size();
      }
      for (Request& req : expired) {
        req.promise.set_exception(std::make_exception_ptr(RequestTimeoutError(
            "request " + std::to_string(req.id) +
            " spent its deadline waiting in the serving queue (" +
            std::to_string(ms_since(req.enqueued)) + " ms queued)")));
      }
      expired.clear();
    }
    if (batch.empty()) continue;
    try {
      process_batch(state, batch);
    } catch (...) {
      // A bad request (shape/feature mismatch) must not kill the worker
      // or starve its batchmates' futures.
      const std::exception_ptr err = std::current_exception();
      for (Request& req : batch) {
        try {
          req.promise.set_exception(err);
        } catch (const std::future_error&) {
          // already fulfilled before the throw — leave it
        }
      }
    }
    batch.clear();
  }
}

void BatchingEngine::refresh(WorkerState& state) const {
  std::shared_ptr<const ModelSnapshot> snap = registry_.snapshot();
  FEDCLUST_REQUIRE(snap != nullptr,
                   "engine received a request before the first publish()");
  if (state.snap != nullptr && state.snap->version == snap->version) return;

  state.router.emplace(snap, config_.router);
  state.replicas.clear();
  state.replicas.reserve(snap->num_clusters());
  for (std::size_t c = 0; c < snap->num_clusters(); ++c) {
    nn::Model replica = snap->template_model.clone();
    replica.set_flat_weights(snap->cluster_weights[c]);
    replica.set_thread_pool(config_.kernel_pool);
    state.replicas.push_back(std::move(replica));
  }
  state.snap = std::move(snap);
}

void BatchingEngine::process_batch(WorkerState& state,
                                   std::vector<Request>& batch) {
  refresh(state);
  const ModelSnapshot& snap = *state.snap;
  const std::size_t k = snap.num_clusters();
  const Shape& sample_shape = batch.front().input.shape();
  for (const Request& req : batch) {
    FEDCLUST_REQUIRE(req.input.shape() == sample_shape,
                     "request " << req.id << " shape "
                                << shape_to_string(req.input.shape())
                                << " differs from its batch "
                                << shape_to_string(sample_shape));
  }

  std::vector<RouteDecision> decisions(batch.size());
  if (config_.router.mode != RouteMode::kEnsemble) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      decisions[i] = state.router->route(batch[i].features);
    }
  }

  std::vector<InferenceResult> results(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    results[i].id = batch[i].id;
    results[i].snapshot_version = snap.version;
  }

  if (config_.router.mode == RouteMode::kHard) {
    // One forward per routed group: rows going to the same cluster head
    // share a single GEMM pass.
    std::vector<std::vector<std::size_t>> groups(k);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      groups[decisions[i].cluster].push_back(i);
    }
    for (std::size_t c = 0; c < k; ++c) {
      const std::vector<std::size_t>& group = groups[c];
      if (group.empty()) continue;
      state.packed.resize(batched_shape(sample_shape, group.size()));
      const std::size_t row_floats = batch.front().input.numel();
      for (std::size_t r = 0; r < group.size(); ++r) {
        std::copy_n(batch[group[r]].input.data(), row_floats,
                    state.packed.data() + r * row_floats);
      }
      const Tensor logits = state.replicas[c].forward(state.packed, false);
      ops::softmax_rows(logits, state.probs);
      const std::size_t cols = state.probs.dim(1);
      for (std::size_t r = 0; r < group.size(); ++r) {
        InferenceResult& res = results[group[r]];
        res.cluster = c;
        res.weights.assign(k, 0.0);
        res.weights[c] = 1.0;
        res.probs.assign(state.probs.data() + r * cols,
                         state.probs.data() + (r + 1) * cols);
        res.batch_rows = group.size();
      }
    }
  } else {
    // Soft / ensemble: every head sees the whole batch once; mix the
    // per-head probabilities per request. The mixture accumulates in
    // double over clusters in index order — batch-composition-
    // independent, so batched == unbatched bitwise.
    state.packed.resize(batched_shape(sample_shape, batch.size()));
    const std::size_t row_floats = batch.front().input.numel();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      std::copy_n(batch[i].input.data(), row_floats,
                  state.packed.data() + i * row_floats);
    }

    std::vector<std::vector<float>> head_probs(k);  // k × (rows*cols)
    std::size_t cols = 0;
    for (std::size_t c = 0; c < k; ++c) {
      const Tensor logits = state.replicas[c].forward(state.packed, false);
      ops::softmax_rows(logits, state.probs);
      cols = state.probs.dim(1);
      head_probs[c].assign(state.probs.data(),
                           state.probs.data() + state.probs.numel());
    }

    for (std::size_t i = 0; i < batch.size(); ++i) {
      InferenceResult& res = results[i];
      if (config_.router.mode == RouteMode::kSoft) {
        res.weights = decisions[i].weights;
        res.cluster = decisions[i].cluster;
      } else {
        // Confidence weighting: each head's max softmax probability on
        // this input, normalized across heads.
        res.weights.assign(k, 0.0);
        double total = 0.0;
        for (std::size_t c = 0; c < k; ++c) {
          const float* row = head_probs[c].data() + i * cols;
          res.weights[c] = *std::max_element(row, row + cols);
          total += res.weights[c];
        }
        for (double& w : res.weights) w /= total;
        res.cluster = argmax_weight(res.weights);
      }
      res.probs.assign(cols, 0.0f);
      for (std::size_t j = 0; j < cols; ++j) {
        double acc = 0.0;
        for (std::size_t c = 0; c < k; ++c) {
          acc += res.weights[c] *
                 static_cast<double>(head_probs[c][i * cols + j]);
        }
        res.probs[j] = static_cast<float>(acc);
      }
      res.batch_rows = batch.size();
    }
  }

  for (std::size_t i = 0; i < batch.size(); ++i) {
    results[i].latency_ms = ms_since(batch[i].enqueued);
  }
  record(batch, results);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i].promise.set_value(std::move(results[i]));
  }
}

void BatchingEngine::record(const std::vector<Request>& batch,
                            const std::vector<InferenceResult>& results) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_.requests += batch.size();
  ++stats_.batches;
  for (const InferenceResult& res : results) {
    stats_.latency_ms.record(res.latency_ms);
  }
}

}  // namespace fedclust::serve
