// Batched inference engine over a hot-reloadable ModelRegistry.
//
// Concurrent producers submit() single-sample requests into an MPMC
// queue; worker threads drain it with a dynamic batcher (close a batch
// at max_batch rows or max_delay_ms after its first request, whichever
// comes first) and run ONE forward pass per cluster head for the whole
// batch — the SIMD GEMM kernels amortize across rows instead of being
// called once per request.
//
// Determinism contract: the per-request output is BIT-IDENTICAL to the
// synchronous unbatched infer() path within a build, for any batch
// composition and worker count. This follows from three properties:
//  * the GEMM kernels fix each output element's accumulation order by
//    (element index, problem size), never by row count or thread;
//  * softmax and pooling are strictly per-row;
//  * the cluster-mixture accumulation runs per request in double, over
//    clusters in index order, independent of who shares the batch.
// The concurrency tests assert this bitwise at every (batch, workers)
// combination.
//
// Hot reload: each worker caches its own replica set (one nn::Model per
// cluster, weights loaded once) and refreshes it between batches when
// the registry's version moved — a publish() never stalls the queue.
// Forward passes run with train=false, so no backward caches are
// allocated anywhere on the serving path (see nn/layer.hpp).
//
// Overload control: the queue is bounded (EngineConfig::max_queue) and
// requests carry deadlines (EngineConfig::default_timeout_ms or the
// per-call submit() override). submit() against a full queue throws
// QueueFullError without enqueueing; a request still queued when its
// deadline passes has its future fail with RequestTimeoutError at the
// next dequeue — a promise is never left dangling, including across
// stop(), which drains and answers (or times out) everything queued.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "serve/registry.hpp"
#include "serve/router.hpp"
#include "tensor/tensor.hpp"
#include "utils/error.hpp"
#include "utils/histogram.hpp"

namespace fedclust {
class ThreadPool;
}

namespace fedclust::serve {

/// Thrown by submit() when the queue already holds max_queue requests.
/// The request is NOT enqueued; callers shed load or retry later.
class QueueFullError : public Error {
 public:
  explicit QueueFullError(const std::string& what) : Error(what) {}
};

/// Delivered through a request's future when it spent its deadline
/// waiting in the queue and was dropped instead of batched.
class RequestTimeoutError : public Error {
 public:
  explicit RequestTimeoutError(const std::string& what) : Error(what) {}
};

struct EngineConfig {
  RouterConfig router;
  /// A batch closes as soon as it holds this many requests...
  std::size_t max_batch = 32;
  /// ...or this long after its first request was dequeued, whichever is
  /// first. 0 = never wait: take whatever is queued right now.
  double max_delay_ms = 0.2;
  /// Batcher worker threads (each owns a full replica set).
  std::size_t workers = 1;
  /// Borrowed intra-op pool for the layer GEMMs; may be null.
  ThreadPool* kernel_pool = nullptr;
  /// Admission limit: submit() throws QueueFullError once this many
  /// requests are already waiting in the queue (dequeued requests no
  /// longer count). 0 = unbounded (legacy behaviour).
  std::size_t max_queue = 0;
  /// Default per-request deadline in milliseconds from submit(). A
  /// request still queued past its deadline is answered with
  /// RequestTimeoutError instead of a forward pass. 0 = no deadline.
  /// Overridable per call via submit()'s timeout_ms.
  double default_timeout_ms = 0.0;
};

/// Answer to one request.
struct InferenceResult {
  std::uint64_t id = 0;
  /// Softmax class probabilities (the served mixture in soft/ensemble).
  std::vector<float> probs;
  /// Cluster with the largest mixture weight (ties -> lowest id). In
  /// hard mode this is exactly the FedClust newcomer assignment.
  std::size_t cluster = 0;
  /// Per-cluster mixture weights, summing to 1 (one-hot in hard mode).
  std::vector<double> weights;
  /// Version of the snapshot that served this request.
  std::uint64_t snapshot_version = 0;
  /// Rows that shared this request's forward pass (its routed group in
  /// hard mode, the whole batch otherwise; 1 on the unbatched path).
  std::size_t batch_rows = 0;
  /// submit() -> fulfilled, milliseconds (forward time alone for
  /// infer()).
  double latency_ms = 0.0;
};

/// Counters + latency distribution since construction. Returned by
/// value; safe to read while the engine runs.
struct EngineStats {
  std::uint64_t requests = 0;  ///< requests answered (batched path)
  std::uint64_t batches = 0;   ///< forward batches executed
  std::uint64_t rejected = 0;  ///< submits refused by max_queue admission
  std::uint64_t timeouts = 0;  ///< requests failed with RequestTimeoutError
  utils::StreamingHistogram latency_ms;
};

class BatchingEngine {
 public:
  /// The registry must outlive the engine and hold a published snapshot
  /// by the time the first request arrives.
  BatchingEngine(const ModelRegistry& registry, EngineConfig config);
  ~BatchingEngine();

  BatchingEngine(const BatchingEngine&) = delete;
  BatchingEngine& operator=(const BatchingEngine&) = delete;

  /// Enqueues one request. `input` is a single-sample batch (dim 0 must
  /// be 1); `features` is the routing partial-weight vector (ignored in
  /// ensemble mode, may be empty there). Throws after stop(), and
  /// QueueFullError when max_queue requests are already waiting.
  /// `timeout_ms` > 0 sets this request's deadline; <= 0 falls back to
  /// EngineConfig::default_timeout_ms (which may itself be 0 = none).
  std::future<InferenceResult> submit(std::uint64_t id, Tensor input,
                                      std::vector<float> features,
                                      double timeout_ms = 0.0);

  /// Synchronous unbatched reference path: same code as the batch
  /// workers, batch size forced to 1, on a dedicated replica set. The
  /// batched path must match its output bit-for-bit.
  InferenceResult infer(std::uint64_t id, const Tensor& input,
                        std::span<const float> features);

  /// Drains the queue, answers everything already submitted, then joins
  /// the workers. Idempotent; the destructor calls it.
  void stop();

  EngineStats stats() const;
  const EngineConfig& config() const { return config_; }

 private:
  struct Request {
    std::uint64_t id = 0;
    Tensor input;
    std::vector<float> features;
    std::promise<InferenceResult> promise;
    std::chrono::steady_clock::time_point enqueued;
    /// Past this instant a still-queued request is timed out at dequeue.
    std::chrono::steady_clock::time_point deadline{};
    bool has_deadline = false;
  };

  /// Per-worker serving state, rebuilt when the snapshot version moves.
  struct WorkerState {
    std::shared_ptr<const ModelSnapshot> snap;
    std::optional<Router> router;
    std::vector<nn::Model> replicas;  ///< index = cluster id
    Tensor packed;  ///< batch input buffer, reused via resize()
    Tensor probs;   ///< per-head softmax buffer, reused
  };

  void worker_loop();
  void refresh(WorkerState& state) const;
  /// Routes, forwards, mixes, and fulfills every promise in `batch`.
  void process_batch(WorkerState& state, std::vector<Request>& batch);
  void record(const std::vector<Request>& batch,
              const std::vector<InferenceResult>& results);

  const ModelRegistry& registry_;
  EngineConfig config_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  /// Dedicated state for the synchronous infer() reference path.
  std::mutex reference_mutex_;
  WorkerState reference_;

  mutable std::mutex stats_mutex_;
  EngineStats stats_;
};

}  // namespace fedclust::serve
