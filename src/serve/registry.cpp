#include "serve/registry.hpp"

#include <utility>

#include "check/audit.hpp"
#include "cluster/routing.hpp"
#include "utils/error.hpp"

namespace fedclust::serve {
namespace {

/// Shared tail of both freeze paths: validates shapes, caches anchor
/// sqnorms, fingerprints the served weights.
ModelSnapshot freeze_impl(const nn::Model& template_model,
                          std::vector<std::vector<float>> cluster_weights,
                          std::vector<std::vector<float>> partial_weights,
                          std::vector<std::size_t> labels) {
  FEDCLUST_REQUIRE(!cluster_weights.empty(),
                   "cannot freeze a snapshot with zero cluster models; "
                   "only clustered algorithms (FedClust) are servable");
  const std::size_t n = template_model.num_weights();
  for (std::size_t c = 0; c < cluster_weights.size(); ++c) {
    FEDCLUST_REQUIRE(cluster_weights[c].size() == n,
                     "cluster model " << c << " has "
                                      << cluster_weights[c].size()
                                      << " floats, template " << n);
  }
  FEDCLUST_REQUIRE(labels.size() == partial_weights.size(),
                   "labels cover " << labels.size() << " clients, anchors "
                                   << partial_weights.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    FEDCLUST_REQUIRE(labels[i] < cluster_weights.size(),
                     "anchor " << i << " labeled " << labels[i]
                               << " outside " << cluster_weights.size()
                               << " clusters");
  }

  ModelSnapshot snap;
  snap.template_model = template_model.clone();
  snap.cluster_weights = std::move(cluster_weights);
  snap.partial_weights = std::move(partial_weights);
  snap.labels = std::move(labels);
  snap.anchor_sqnorms = cluster::anchor_sqnorms(snap.partial_weights);
  snap.weights_fp = check::weights_fingerprint(snap.cluster_weights);
  return snap;
}

}  // namespace

ModelSnapshot freeze(const nn::Model& template_model,
                     const fl::RunResult& result,
                     const core::ClusteringOutcome& outcome) {
  return freeze_impl(template_model, result.cluster_weights,
                     outcome.partial_weights, outcome.labels);
}

ModelSnapshot freeze_checkpoint(const nn::Model& template_model,
                                const robust::RunCheckpoint& checkpoint) {
  // Checkpoint labels are u64 on the wire; narrow back to size_t.
  std::vector<std::size_t> labels(checkpoint.labels.begin(),
                                  checkpoint.labels.end());
  return freeze_impl(template_model, checkpoint.cluster_weights,
                     checkpoint.partial_weights, std::move(labels));
}

std::shared_ptr<const ModelSnapshot> ModelRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

std::uint64_t ModelRegistry::publish(ModelSnapshot snap) {
  auto next = std::make_shared<ModelSnapshot>(std::move(snap));
  std::lock_guard<std::mutex> lock(mutex_);
  next->version = next_version_++;
  current_ = std::move(next);
  return current_->version;
}

std::uint64_t ModelRegistry::version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_ ? current_->version : 0;
}

std::uint64_t ModelRegistry::reload_checkpoint(
    const nn::Model& template_model, const robust::RunCheckpoint& checkpoint) {
  return publish(freeze_checkpoint(template_model, checkpoint));
}

}  // namespace fedclust::serve
