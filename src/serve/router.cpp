#include "serve/router.hpp"

#include <cmath>
#include <limits>
#include <utility>

#include "cluster/routing.hpp"
#include "utils/error.hpp"

namespace fedclust::serve {

const char* route_mode_name(RouteMode mode) {
  switch (mode) {
    case RouteMode::kHard:
      return "hard";
    case RouteMode::kSoft:
      return "soft";
    case RouteMode::kEnsemble:
      return "ensemble";
  }
  FEDCLUST_REQUIRE(false, "unreachable route mode");
  return "";
}

RouteMode parse_route_mode(const std::string& name) {
  if (name == "hard") return RouteMode::kHard;
  if (name == "soft") return RouteMode::kSoft;
  if (name == "ensemble") return RouteMode::kEnsemble;
  FEDCLUST_REQUIRE(false, "unknown route mode '"
                              << name << "' (hard | soft | ensemble)");
  return RouteMode::kHard;
}

std::vector<double> gaussian_weights(const std::vector<double>& distances,
                                     double sigma) {
  FEDCLUST_REQUIRE(!distances.empty(), "no clusters to weight");

  double min_sq = std::numeric_limits<double>::infinity();
  double finite_sum = 0.0;
  std::size_t finite_count = 0;
  for (double d : distances) {
    if (!std::isfinite(d)) continue;
    min_sq = std::min(min_sq, d * d);
    finite_sum += d;
    ++finite_count;
  }
  FEDCLUST_REQUIRE(finite_count > 0,
                   "every cluster is anchor-less; cannot soft-route");

  if (sigma <= 0.0) sigma = finite_sum / static_cast<double>(finite_count);
  // All anchors can coincide with the query (σ auto-resolves to 0);
  // any positive bandwidth then yields the same uniform weighting.
  if (sigma <= 0.0) sigma = 1.0;

  const double inv_two_sq = 1.0 / (2.0 * sigma * sigma);
  std::vector<double> w(distances.size(), 0.0);
  double total = 0.0;
  for (std::size_t c = 0; c < distances.size(); ++c) {
    if (!std::isfinite(distances[c])) continue;  // weight stays exactly 0
    w[c] = std::exp(-(distances[c] * distances[c] - min_sq) * inv_two_sq);
    total += w[c];
  }
  for (double& x : w) x /= total;
  return w;
}

Router::Router(std::shared_ptr<const ModelSnapshot> snapshot,
               RouterConfig config)
    : snapshot_(std::move(snapshot)), config_(config) {
  FEDCLUST_REQUIRE(snapshot_ != nullptr, "router needs a snapshot");
}

RouteDecision Router::route(std::span<const float> features) const {
  const ModelSnapshot& snap = *snapshot_;
  RouteDecision decision;

  if (config_.mode == RouteMode::kEnsemble) {
    // Confidence weighting happens after the forward pass, per input;
    // there is nothing to decide from the features here.
    return decision;
  }

  decision.distances = cluster::mean_cluster_distances(
      features, snap.partial_weights, snap.labels, snap.num_clusters(),
      &snap.anchor_sqnorms);
  decision.cluster = cluster::nearest_cluster(decision.distances);

  if (config_.mode == RouteMode::kHard) {
    decision.weights.assign(snap.num_clusters(), 0.0);
    decision.weights[decision.cluster] = 1.0;
  } else {
    decision.weights = gaussian_weights(decision.distances, config_.sigma);
  }
  return decision;
}

}  // namespace fedclust::serve
