// Frozen per-cluster model snapshots + hot-reloadable registry.
//
// Training (core::FedClust) ends with K cluster models and the
// formation-round partial uploads that anchor the newcomer rule. The
// serving path freezes both into an immutable ModelSnapshot:
//
//  * the per-cluster flat weight vectors (what each cluster head serves),
//  * the routing anchors (partial uploads + labels), and
//  * the anchors' squared norms, precomputed once so every routed
//    request pays one dot product per anchor instead of a full
//    subtract-square pass (the Gram trick from cluster/distance).
//
// Snapshots are sealed at freeze time and never mutated; ModelRegistry
// swaps a shared_ptr under a mutex, so readers (router/engine workers)
// keep serving the old snapshot until they observe the new version —
// hot reload without blocking in-flight requests.
//
// Snapshots freeze from either a finished fl::RunResult (live process)
// or a robust::RunCheckpoint (FCKP file, CRC-32-verified by
// load_checkpoint) — both paths produce bit-identical snapshots for the
// same run state.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/fedclust.hpp"
#include "fl/metrics.hpp"
#include "nn/model.hpp"
#include "robust/checkpoint.hpp"

namespace fedclust::serve {

/// Immutable bundle of everything the serving path needs. Shared
/// read-only between workers; built by freeze()/freeze_checkpoint().
struct ModelSnapshot {
  /// Assigned by ModelRegistry::publish (monotonic from 1); 0 = never
  /// published.
  std::uint64_t version = 0;
  /// Architecture template; its own weights are irrelevant (workers
  /// clone it and load a cluster's flat weights).
  nn::Model template_model;
  /// Per-cluster flat server models (index = cluster id).
  std::vector<std::vector<float>> cluster_weights;
  /// Formation-round partial uploads (index = client; empty for a
  /// deferred client that never reported) — the routing anchors.
  std::vector<std::vector<float>> partial_weights;
  /// Anchor -> cluster assignment.
  std::vector<std::size_t> labels;
  /// kernels().sqnorm of each anchor, cached once at freeze time.
  std::vector<double> anchor_sqnorms;
  /// check::weights_fingerprint over cluster_weights — lets operators
  /// verify which model generation a replica serves.
  std::uint64_t weights_fp = 0;

  std::size_t num_clusters() const { return cluster_weights.size(); }
};

/// Freezes a snapshot out of a finished run. `result` must carry
/// cluster_weights (a clustered algorithm like FedClust); `outcome`
/// supplies the routing anchors — typically FedClust::last_clustering().
ModelSnapshot freeze(const nn::Model& template_model,
                     const fl::RunResult& result,
                     const core::ClusteringOutcome& outcome);

/// Freezes from a crash-recovery checkpoint (the FCKP loader has
/// already CRC-verified it). Equivalent run state yields a snapshot
/// bit-identical to freeze()'s.
ModelSnapshot freeze_checkpoint(const nn::Model& template_model,
                                const robust::RunCheckpoint& checkpoint);

/// Hot-reloadable snapshot holder. snapshot() hands out a shared_ptr to
/// the current immutable snapshot; publish() installs a new one and
/// bumps the version. In-flight requests keep the snapshot they started
/// with alive through their shared_ptr.
class ModelRegistry {
 public:
  /// Current snapshot; nullptr before the first publish().
  std::shared_ptr<const ModelSnapshot> snapshot() const;
  /// Installs `snap` as current, stamping the next version number.
  /// Returns the assigned version (monotonic from 1).
  std::uint64_t publish(ModelSnapshot snap);
  /// Version of the current snapshot (0 before the first publish).
  std::uint64_t version() const;

  /// freeze_checkpoint + publish in one step: hot-reloads the registry
  /// from a training-side checkpoint. The serving loop for a dynamic
  /// FedClust run calls this after a drift recovery — the re-clustered
  /// partition (possibly with a different cluster count) replaces the
  /// stale snapshot without blocking in-flight requests.
  std::uint64_t reload_checkpoint(const nn::Model& template_model,
                                  const robust::RunCheckpoint& checkpoint);

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<const ModelSnapshot> current_;
  std::uint64_t next_version_ = 1;
};

}  // namespace fedclust::serve
