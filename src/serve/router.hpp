// Request-to-cluster routing over a frozen ModelSnapshot.
//
// A request arrives with a routing feature vector: the client's warmup
// partial upload — the same final-layer weights FedClust clusters on.
// Three modes turn its distances to the stored cluster anchors into a
// serving decision:
//
//  * kHard     — serve the single nearest cluster's model. The distance
//                and argmin are the EXACT newcomer assignment rule from
//                core::FedClust (same cluster/routing primitives, same
//                strict-< tie-break), so a client routed here lands on
//                the same cluster the trainer would have assigned it to.
//  * kSoft     — Gaussian-weight every cluster by exp(-d²/2σ²) and mix
//                the cluster heads' probability outputs. Degrades
//                gracefully when a client sits between two clusters.
//  * kEnsemble — forward through every cluster head and weight each by
//                its own confidence (max softmax probability per input),
//                ignoring the distances entirely. Serves clients with no
//                usable routing features.
//
// The router itself is stateless apart from the snapshot pointer: one
// instance per worker, no locks.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "serve/registry.hpp"

namespace fedclust::serve {

enum class RouteMode {
  kHard,
  kSoft,
  kEnsemble,
};

/// "hard" / "soft" / "ensemble" — for CLI flags and bench JSON.
const char* route_mode_name(RouteMode mode);
/// Inverse of route_mode_name; throws fedclust::Error on anything else.
RouteMode parse_route_mode(const std::string& name);

struct RouterConfig {
  RouteMode mode = RouteMode::kHard;
  /// kSoft bandwidth. 0 = auto: per request, σ is the mean of the finite
  /// cluster distances — scale-free, so one default works across models.
  double sigma = 0.0;
};

/// Outcome of routing one request (before any forward pass).
struct RouteDecision {
  /// Hard winner (strict-< argmin over mean distances; cluster 0 when
  /// nothing is reachable). kEnsemble leaves it at the argmax weight
  /// after the forward instead.
  std::size_t cluster = 0;
  /// Mean distance to each cluster's anchors (+inf for anchor-less
  /// clusters). Empty in kEnsemble mode (distances are not computed).
  std::vector<double> distances;
  /// Per-cluster mixture weights, summing to 1. kHard: one-hot. kSoft:
  /// Gaussian over distances. kEnsemble: empty here — filled per input
  /// from head confidences after the forward pass.
  std::vector<double> weights;
};

/// Turns a distance profile into normalized Gaussian weights
/// exp(-d²/2σ²). Subtracts the minimum d² before exponentiating (the
/// log-sum-exp trick) so widely separated clusters cannot underflow to
/// an all-zero weight vector; +inf distances get exactly weight 0.
/// sigma <= 0 selects the auto bandwidth (mean finite distance).
std::vector<double> gaussian_weights(const std::vector<double>& distances,
                                     double sigma);

class Router {
 public:
  Router(std::shared_ptr<const ModelSnapshot> snapshot, RouterConfig config);

  /// Routes one request by its partial-weight features. `features` must
  /// match the anchors' length except in kEnsemble mode, where it is
  /// ignored (may be empty).
  RouteDecision route(std::span<const float> features) const;

  const RouterConfig& config() const { return config_; }
  const ModelSnapshot& snapshot() const { return *snapshot_; }

 private:
  std::shared_ptr<const ModelSnapshot> snapshot_;
  RouterConfig config_;
};

}  // namespace fedclust::serve
