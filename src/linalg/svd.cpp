#include "linalg/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace fedclust {
namespace {

/// Column dot product of an m×n matrix.
double col_dot(const Matrix& a, std::size_t ci, std::size_t cj) {
  double s = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r) s += a(r, ci) * a(r, cj);
  return s;
}

}  // namespace

SvdResult svd(const Matrix& a, int max_sweeps, double tol) {
  FEDCLUST_REQUIRE(!a.empty(), "svd of empty matrix");
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();

  // One-sided Jacobi works on the columns of U; start with U = A,
  // V = I, and rotate column pairs until all are mutually orthogonal.
  Matrix u = a;
  Matrix v = Matrix::identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = col_dot(u, p, q);
        const double app = col_dot(u, p, p);
        const double aqq = col_dot(u, q, q);
        const double denom = std::sqrt(app * aqq);
        if (denom <= 0.0 || std::abs(apq) <= tol * denom) continue;
        off = std::max(off, std::abs(apq) / denom);

        // Jacobi rotation that zeroes the (p,q) inner product.
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (std::size_t r = 0; r < m; ++r) {
          const double up = u(r, p);
          const double uq = u(r, q);
          u(r, p) = c * up - s * uq;
          u(r, q) = s * up + c * uq;
        }
        for (std::size_t r = 0; r < n; ++r) {
          const double vp = v(r, p);
          const double vq = v(r, q);
          v(r, p) = c * vp - s * vq;
          v(r, q) = s * vp + c * vq;
        }
      }
    }
    if (off <= tol) break;
  }

  // Column norms are the singular values; normalize U's columns.
  const std::size_t r = std::min(m, n);
  std::vector<double> sigma(n);
  for (std::size_t j = 0; j < n; ++j) sigma[j] = std::sqrt(col_dot(u, j, j));

  // Sort descending by singular value.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return sigma[i] > sigma[j]; });

  SvdResult out;
  out.u = Matrix(m, r);
  out.v = Matrix(n, r);
  out.singular_values.resize(r);
  for (std::size_t jj = 0; jj < r; ++jj) {
    const std::size_t j = order[jj];
    const double s = sigma[j];
    out.singular_values[jj] = s;
    const double inv = s > 0.0 ? 1.0 / s : 0.0;
    for (std::size_t i = 0; i < m; ++i) out.u(i, jj) = u(i, j) * inv;
    for (std::size_t i = 0; i < n; ++i) out.v(i, jj) = v(i, j);
  }
  return out;
}

Matrix truncated_left_singular_vectors(const Matrix& a, std::size_t p) {
  FEDCLUST_REQUIRE(p > 0 && p <= std::min(a.rows(), a.cols()),
                   "invalid truncation rank " << p);
  const SvdResult full = svd(a);
  Matrix u(a.rows(), p);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < p; ++j) u(i, j) = full.u(i, j);
  }
  return u;
}

Matrix truncated_left_singular_vectors_gram(const Matrix& a, std::size_t p) {
  FEDCLUST_REQUIRE(p > 0 && p <= std::min(a.rows(), a.cols()),
                   "invalid truncation rank " << p);
  // G = AᵀA is n×n symmetric PSD; its SVD gives G = V diag(s²) Vᵀ with the
  // right singular vectors of A, and U_j = A·v_j / s_j.
  const Matrix gram = matmul_tn(a, a);
  const SvdResult eig = svd(gram);

  Matrix u(a.rows(), p);
  for (std::size_t j = 0; j < p; ++j) {
    const double sigma = std::sqrt(std::max(eig.singular_values[j], 0.0));
    if (sigma <= 1e-12) continue;  // rank-deficient: leave a zero column
    const double inv = 1.0 / sigma;
    for (std::size_t i = 0; i < a.rows(); ++i) {
      double s = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) {
        s += a(i, k) * eig.v(k, j);
      }
      u(i, j) = s * inv;
    }
  }
  return u;
}

std::size_t orthonormalize_columns(Matrix& a, double tol) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  std::size_t kept = 0;
  for (std::size_t j = 0; j < n; ++j) {
    // Subtract projections onto previously kept columns (MGS).
    for (std::size_t k = 0; k < kept; ++k) {
      double proj = 0.0;
      for (std::size_t i = 0; i < m; ++i) proj += a(i, k) * a(i, j);
      for (std::size_t i = 0; i < m; ++i) a(i, j) -= proj * a(i, k);
    }
    double norm = 0.0;
    for (std::size_t i = 0; i < m; ++i) norm += a(i, j) * a(i, j);
    norm = std::sqrt(norm);
    if (norm <= tol) {
      for (std::size_t i = 0; i < m; ++i) a(i, j) = 0.0;
      continue;
    }
    const double inv = 1.0 / norm;
    for (std::size_t i = 0; i < m; ++i) a(i, j) *= inv;
    if (j != kept) {
      for (std::size_t i = 0; i < m; ++i) {
        std::swap(a(i, j), a(i, kept));
      }
    }
    ++kept;
  }
  return kept;
}

std::vector<double> principal_angles(const Matrix& u1, const Matrix& u2) {
  FEDCLUST_REQUIRE(u1.rows() == u2.rows(),
                   "principal_angles: bases live in different spaces");
  const Matrix inner = matmul_tn(u1, u2);  // p×q
  const SvdResult s = svd(inner);
  std::vector<double> angles;
  angles.reserve(s.singular_values.size());
  for (double sv : s.singular_values) {
    angles.push_back(std::acos(std::clamp(sv, 0.0, 1.0)));
  }
  std::sort(angles.begin(), angles.end());
  return angles;
}

double smallest_principal_angle(const Matrix& u1, const Matrix& u2) {
  const auto angles = principal_angles(u1, u2);
  FEDCLUST_CHECK(!angles.empty(), "no principal angles computed");
  return angles.front();
}

}  // namespace fedclust
