// Double-precision dense matrix used by the clustering and subspace code.
//
// Neural-network tensors are float32 (tensor/), but the server-side
// analytics — proximity matrices, SVD for PACFL, principal angles — are
// small and precision-sensitive, so they run in double. The two types are
// deliberately distinct: Matrix is never on the training hot path.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "utils/error.hpp"

namespace fedclust {

/// Row-major dense double matrix with value semantics.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer data (rows of equal length).
  static Matrix from_rows(const std::vector<std::vector<double>>& rows);
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t i, std::size_t j) {
    FEDCLUST_DCHECK(i < rows_ && j < cols_, "matrix index out of range");
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    FEDCLUST_DCHECK(i < rows_ && j < cols_, "matrix index out of range");
    return data_[i * cols_ + j];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Returns column j as a vector.
  std::vector<double> col(std::size_t j) const;
  /// Returns row i as a vector.
  std::vector<double> row(std::size_t i) const;

  Matrix transposed() const;

  /// Frobenius norm.
  double frobenius_norm() const;

  std::string to_string(int precision = 3) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// C = A · B.
Matrix matmul(const Matrix& a, const Matrix& b);
/// C = Aᵀ · B.
Matrix matmul_tn(const Matrix& a, const Matrix& b);

/// True for a square matrix with |m(i,j) − m(j,i)| <= atol everywhere.
/// Proximity matrices assert this invariant after construction.
bool is_symmetric(const Matrix& m, double atol = 0.0);

}  // namespace fedclust
