// Singular value decomposition and subspace utilities.
//
// PACFL (one of the Table-I baselines) identifies client similarity from
// the principal angles between the column spaces of per-class data
// matrices; that needs a truncated SVD and a principal-angle routine.
// The matrices involved are tall-thin (feature_dim × samples_per_class)
// with at most a few hundred columns, so a one-sided Jacobi SVD is simple,
// accurate and fast enough.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace fedclust {

/// Result of a thin SVD A = U · diag(s) · Vᵀ, with U (m×r), s (r),
/// V (n×r), where r = min(m, n). Singular values are sorted descending.
struct SvdResult {
  Matrix u;
  std::vector<double> singular_values;
  Matrix v;
};

/// Thin SVD via one-sided Jacobi rotations on the columns of A.
/// Converges to machine precision for the modest sizes used here.
SvdResult svd(const Matrix& a, int max_sweeps = 60, double tol = 1e-12);

/// First `p` left singular vectors of A as an m×p matrix (p ≤ min(m, n)).
Matrix truncated_left_singular_vectors(const Matrix& a, std::size_t p);

/// Same result computed through the n×n Gram matrix AᵀA — much faster for
/// tall-thin A (rows ≫ cols), the PACFL per-class data matrices
/// (pixels × samples). Columns whose singular value is numerically zero
/// come back as zero vectors.
Matrix truncated_left_singular_vectors_gram(const Matrix& a, std::size_t p);

/// Orthonormalizes the columns of A in place via modified Gram–Schmidt;
/// returns the number of linearly independent columns kept (dependent
/// columns are replaced by zero vectors and moved to the end).
std::size_t orthonormalize_columns(Matrix& a, double tol = 1e-12);

/// Principal angles (radians, ascending) between the column spaces of two
/// orthonormal bases U1 (d×p) and U2 (d×q): arccos of the singular values
/// of U1ᵀ·U2, clamped to [0, 1].
std::vector<double> principal_angles(const Matrix& u1, const Matrix& u2);

/// Smallest principal angle between two orthonormal bases (radians).
double smallest_principal_angle(const Matrix& u1, const Matrix& u2);

}  // namespace fedclust
