#include "linalg/matrix.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>

namespace fedclust {

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  FEDCLUST_REQUIRE(!rows.empty(), "from_rows needs at least one row");
  const std::size_t cols = rows.front().size();
  Matrix m(rows.size(), cols);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    FEDCLUST_REQUIRE(rows[i].size() == cols, "ragged rows in from_rows");
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = rows[i][j];
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

std::vector<double> Matrix::col(std::size_t j) const {
  FEDCLUST_REQUIRE(j < cols_, "column index out of range");
  std::vector<double> out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) out[i] = (*this)(i, j);
  return out;
}

std::vector<double> Matrix::row(std::size_t i) const {
  FEDCLUST_REQUIRE(i < rows_, "row index out of range");
  return {data_.begin() + static_cast<std::ptrdiff_t>(i * cols_),
          data_.begin() + static_cast<std::ptrdiff_t>((i + 1) * cols_)};
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  }
  return t;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      oss << (j ? " " : "") << std::setw(precision + 5) << (*this)(i, j);
    }
    oss << '\n';
  }
  return oss.str();
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  FEDCLUST_REQUIRE(a.cols() == b.rows(), "matmul inner dimension mismatch");
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c(i, j) += aik * b(k, j);
      }
    }
  }
  return c;
}

bool is_symmetric(const Matrix& m, double atol) {
  if (m.rows() != m.cols()) return false;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = i + 1; j < m.cols(); ++j) {
      if (std::abs(m(i, j) - m(j, i)) > atol) return false;
    }
  }
  return true;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  FEDCLUST_REQUIRE(a.rows() == b.rows(), "matmul_tn inner dimension mismatch");
  Matrix c(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double aki = a(k, i);
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c(i, j) += aki * b(k, j);
      }
    }
  }
  return c;
}

}  // namespace fedclust
