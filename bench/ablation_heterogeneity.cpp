// Ablation A3 (the paper's declared future work): accuracy across data
// heterogeneity levels. Sweeps the Dirichlet concentration beta from
// pathological skew to IID and compares the global baseline (FedAvg),
// an iterative clustered method (IFCA), and FedClust.
//
// Expected shape: clustered methods win big at small beta (strong label
// skew = real cluster structure), and the gap closes as data approaches
// IID, where a single global model is optimal.
//
//   ./ablation_heterogeneity [--rounds 10] [--clients 12]
#include <cstdio>

#include "bench_common.hpp"
#include "utils/cli.hpp"
#include "utils/table.hpp"

using namespace fedclust;

int main(int argc, char** argv) {
  CliParser cli("ablation_heterogeneity",
                "Accuracy vs non-IID level (Dirichlet beta sweep)");
  cli.add_int("rounds", 10, "communication rounds per run");
  cli.add_int("clients", 12, "number of clients");
  cli.add_int("pool", 840, "total training samples");
  cli.add_int("seed", 17, "random seed");
  cli.add_flag("quick", "tiny configuration for smoke runs");
  cli.parse(argc, argv);

  const bool quick = cli.get_flag("quick");
  const auto rounds =
      quick ? std::size_t{4} : static_cast<std::size_t>(cli.get_int("rounds"));
  const auto clients =
      quick ? std::size_t{6} : static_cast<std::size_t>(cli.get_int("clients"));
  const auto pool =
      quick ? std::size_t{360} : static_cast<std::size_t>(cli.get_int("pool"));

  struct Level {
    const char* label;
    double beta;
  };
  const Level levels[] = {{"Dir(0.05)", 0.05},
                          {"Dir(0.1)", 0.1},
                          {"Dir(0.5)", 0.5},
                          {"Dir(1.0)", 1.0},
                          {"IID (Dir 1e3)", 1000.0}};

  TextTable table({"Heterogeneity", "Skew index", "FedAvg (%)", "IFCA (%)",
                   "FedClust (%)", "FedClust clusters"});

  for (const Level& level : levels) {
    bench::Scenario s;
    s.dataset = data::SyntheticKind::kFmnist;
    s.num_clients = clients;
    s.dirichlet_beta = level.beta;
    s.pool_samples = pool;
    s.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    s.engine.local.epochs = 1;
    s.engine.local.batch_size = 32;
    s.engine.local.sgd.lr = 0.02;
    s.engine.local.sgd.momentum = 0.9;
    s.engine.eval_every = rounds;

    // Heterogeneity index of this partition, for the x-axis.
    const data::SyntheticGenerator gen(s.dataset, s.seed);
    Rng data_rng = Rng(s.seed).split(101);
    const data::Dataset pool_ds = gen.generate(s.pool_samples, data_rng);
    Rng part_rng = Rng(s.seed).split(102);
    const auto part = partition::dirichlet_partition(
        pool_ds, s.num_clients, level.beta, part_rng, 12);
    const double skew = partition::heterogeneity_index(pool_ds, part);

    double acc_fedavg = 0.0, acc_ifca = 0.0, acc_fedclust = 0.0;
    std::size_t fc_clusters = 0;
    {
      fl::Federation fed = bench::make_federation(s);
      acc_fedavg =
          100.0 * algorithms::FedAvg().run(fed, rounds).final_accuracy.mean;
    }
    {
      fl::Federation fed = bench::make_federation(s);
      acc_ifca = 100.0 * algorithms::Ifca({.num_clusters = 4,
                                           .init_perturbation = 0.1})
                             .run(fed, rounds)
                             .final_accuracy.mean;
    }
    {
      fl::Federation fed = bench::make_federation(s);
      const fl::RunResult r =
          core::FedClust({.warmup_epochs = 2, .min_gap_ratio = 1.5})
              .run(fed, rounds);
      acc_fedclust = 100.0 * r.final_accuracy.mean;
      fc_clusters = r.final_round().num_clusters;
    }

    table.new_row()
        .add(level.label)
        .add(skew, 3)
        .add(acc_fedavg, 2)
        .add(acc_ifca, 2)
        .add(acc_fedclust, 2)
        .add(static_cast<long long>(fc_clusters));
    std::fprintf(stderr, "[hetero] %s done\n", level.label);
  }

  std::printf("\nAblation A3 — accuracy vs data heterogeneity (FMNIST "
              "stand-in, %zu clients, %zu rounds)\n\n%s\n",
              clients, rounds, table.to_string().c_str());
  std::printf("expected: clustered methods dominate at high skew; the gap "
              "narrows toward IID where one global model suffices.\n");
  return 0;
}
