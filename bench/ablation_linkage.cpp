// Ablation A2: sensitivity of FedClust's one-shot clustering to the HC
// linkage rule and the threshold policy.
//
// The paper specifies agglomerative HC but not the linkage; this sweep
// shows how single/complete/average/Ward behave on the same proximity
// matrix, and how the largest-gap auto-threshold compares with fixed
// cuts.
//
//   ./ablation_linkage [--clients 12] [--pool 960]
#include <cstdio>

#include "bench_common.hpp"
#include "cluster/metrics.hpp"
#include "utils/cli.hpp"
#include "utils/table.hpp"

using namespace fedclust;

int main(int argc, char** argv) {
  CliParser cli("ablation_linkage",
                "FedClust clustering vs linkage rule and threshold policy");
  cli.add_int("clients", 12, "number of clients (two groups)");
  cli.add_int("pool", 960, "total training samples");
  cli.add_int("seed", 13, "random seed");
  cli.add_flag("quick", "tiny configuration for smoke runs");
  cli.parse(argc, argv);

  const bool quick = cli.get_flag("quick");
  bench::Scenario s;
  s.dataset = data::SyntheticKind::kFmnist;
  s.num_clients =
      quick ? std::size_t{6} : static_cast<std::size_t>(cli.get_int("clients"));
  s.dirichlet_beta = -1.0;
  s.pool_samples =
      quick ? std::size_t{400} : static_cast<std::size_t>(cli.get_int("pool"));
  s.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  s.engine.local.epochs = 2;
  s.engine.local.batch_size = 32;
  s.engine.local.sgd.lr = 0.02;
  s.engine.local.sgd.momentum = 0.9;

  std::vector<std::size_t> true_groups;
  fl::Federation fed = bench::make_federation(s, &true_groups);

  TextTable table({"Linkage", "Threshold policy", "Applied threshold",
                   "Clusters", "ARI vs truth", "Silhouette"});

  const cluster::Linkage linkages[] = {
      cluster::Linkage::kSingle, cluster::Linkage::kComplete,
      cluster::Linkage::kAverage, cluster::Linkage::kWard};

  for (const cluster::Linkage linkage : linkages) {
    // The silhouette policy (FedClust's default)...
    {
      core::FedClust algo({.warmup_epochs = 2,
                           .linkage = linkage,
                           .cut_policy = core::CutPolicy::kSilhouette});
      const core::ClusteringOutcome out = algo.form_clusters(fed);
      table.new_row()
          .add(cluster::to_string(linkage))
          .add("silhouette (default)")
          .add(out.threshold, 3)
          .add(static_cast<long long>(cluster::num_clusters(out.labels)))
          .add(cluster::adjusted_rand_index(out.labels, true_groups), 3)
          .add(cluster::silhouette(out.proximity, out.labels), 3);
    }
    // ...vs the largest-gap policy at two strictness settings.
    for (const double gap_ratio : {1.2, 2.0}) {
      core::FedClust algo({.warmup_epochs = 2,
                           .linkage = linkage,
                           .cut_policy = core::CutPolicy::kLargestGap,
                           .min_gap_ratio = gap_ratio});
      const core::ClusteringOutcome out = algo.form_clusters(fed);
      table.new_row()
          .add(cluster::to_string(linkage))
          .add("largest gap >= " + std::to_string(gap_ratio).substr(0, 3) +
               "x mean")
          .add(out.threshold, 3)
          .add(static_cast<long long>(cluster::num_clusters(out.labels)))
          .add(cluster::adjusted_rand_index(out.labels, true_groups), 3)
          .add(cluster::silhouette(out.proximity, out.labels), 3);
    }
    // Forced k=2 via cut_k, as an oracle upper bound for this linkage.
    core::FedClust algo({.warmup_epochs = 2, .linkage = linkage});
    const core::ClusteringOutcome out = algo.form_clusters(fed);
    const auto k2 = out.dendrogram.cut_k(2);
    table.new_row()
        .add(cluster::to_string(linkage))
        .add("oracle k=2")
        .add("-")
        .add(static_cast<long long>(2))
        .add(cluster::adjusted_rand_index(k2, true_groups), 3)
        .add(cluster::silhouette(out.proximity, k2), 3);
    std::fprintf(stderr, "[linkage] %s done\n",
                 cluster::to_string(linkage).c_str());
  }

  std::printf("\nAblation A2 — linkage and threshold sensitivity of the "
              "one-shot clustering (2 ground-truth groups)\n\n%s\n",
              table.to_string().c_str());
  std::printf("expected: all linkages separate the two groups; the auto "
              "threshold matches the oracle cut when the gap is sharp.\n");
  return 0;
}
