// Ablation A1: WHICH weights should clients upload for clustering?
//
// The paper's §II argues the final (classifier) layer mirrors the data
// distribution while early conv layers do not, and FedClust's design
// rides on that. This ablation runs FedClust's one-shot formation with
// every candidate slice of LeNet-5 and reports clustering quality vs
// upload cost — final-layer weights should dominate the quality/cost
// frontier.
//
//   ./ablation_layer_choice [--clients 12] [--pool 960]
#include <cstdio>

#include "bench_common.hpp"
#include "cluster/metrics.hpp"
#include "utils/cli.hpp"
#include "utils/table.hpp"

using namespace fedclust;

int main(int argc, char** argv) {
  CliParser cli("ablation_layer_choice",
                "Clustering quality vs upload cost for each weight slice");
  cli.add_int("clients", 12, "number of clients (two groups)");
  cli.add_int("pool", 960, "total training samples");
  cli.add_int("seed", 11, "random seed");
  cli.add_flag("quick", "tiny configuration for smoke runs");
  cli.parse(argc, argv);

  const bool quick = cli.get_flag("quick");
  bench::Scenario s;
  s.dataset = data::SyntheticKind::kCifar10;
  s.num_clients =
      quick ? std::size_t{6} : static_cast<std::size_t>(cli.get_int("clients"));
  s.dirichlet_beta = -1.0;  // two ground-truth groups
  s.pool_samples =
      quick ? std::size_t{400} : static_cast<std::size_t>(cli.get_int("pool"));
  s.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  s.engine.local.epochs = 2;
  s.engine.local.batch_size = 32;
  s.engine.local.sgd.lr = 0.02;
  s.engine.local.sgd.momentum = 0.9;

  std::vector<std::size_t> true_groups;
  fl::Federation fed = bench::make_federation(s, &true_groups);

  // Candidate slices, shallow to deep, plus the two composite specs.
  std::vector<std::string> specs;
  for (const nn::ParamSlice& slice : fed.template_model().slices()) {
    if (slice.name.ends_with(".weight")) specs.push_back(slice.name);
  }
  specs.push_back("final+bias");
  specs.push_back("all");

  TextTable table({"Uploaded slice", "Floats", "Upload vs full (%)",
                   "Block contrast", "ARI @ oracle k=2", "Auto clusters"});

  for (const std::string& spec : specs) {
    core::FedClust algo({.warmup_epochs = 2, .partial_spec = spec});
    const core::ClusteringOutcome out = algo.form_clusters(fed);

    const auto slices =
        core::resolve_partial_slices(fed.template_model(), spec);
    const std::size_t floats = core::slices_numel(slices);

    // The oracle k=2 cut isolates how well THIS slice's distance matrix
    // separates the two ground-truth groups, independent of the cut
    // policy.
    const double oracle_ari = cluster::adjusted_rand_index(
        out.dendrogram.cut_k(2), true_groups);

    table.new_row()
        .add(spec)
        .add(static_cast<long long>(floats))
        .add(100.0 * static_cast<double>(floats) /
                 static_cast<double>(fed.model_size()),
             2)
        .add(cluster::block_contrast(out.proximity, true_groups), 3)
        .add(oracle_ari, 3)
        .add(static_cast<long long>(cluster::num_clusters(out.labels)));
    std::fprintf(stderr, "[layer-choice] %s done\n", spec.c_str());
  }

  std::printf("\nAblation A1 — weight slice used for one-shot clustering "
              "(LeNet-5, CIFAR-10 stand-in, 2 ground-truth groups)\n\n%s\n",
              table.to_string().c_str());
  std::printf("expected shape (paper §II/Fig. 1): late FC slices give high "
              "ARI at a fraction of the upload; early conv slices don't.\n");
  return 0;
}
