// Reproduces Fig. 1 of the FedClust paper: pairwise distance matrices of
// client model weights, computed layer by layer, for 10 clients split
// into two label groups (G1 = classes {0..4}, G2 = classes {5..9}).
//
// The paper's observation: early conv-layer weights show no structure,
// while the FINAL fully connected layer's distance matrix exhibits a
// clean 2x2 block structure mirroring the data groups. We print each
// layer's distance matrix plus two numeric summaries:
//   * block contrast  — mean between-group / mean within-group distance
//     (1.0 = no structure; larger = sharper blocks), and
//   * ARI of the HC cut at k=2 against the ground-truth groups.
//
//   ./fig1_layer_distance [--clients 10] [--epochs 3] [--pool 800]
#include <cstdio>

#include "bench_common.hpp"
#include "cluster/distance.hpp"
#include "cluster/hierarchical.hpp"
#include "cluster/metrics.hpp"
#include "core/partial_weights.hpp"
#include "nn/models.hpp"
#include "utils/cli.hpp"
#include "utils/table.hpp"

using namespace fedclust;

int main(int argc, char** argv) {
  CliParser cli("fig1_layer_distance",
                "Reproduces Fig. 1: layer-wise client distance matrices");
  // Defaults mirror the paper's regime: ONE brief round of local
  // training on modest client data. The depth gradient of the distance
  // structure is sharpest there; with much more local training every
  // layer specializes to its group and the contrast flattens (see
  // EXPERIMENTS.md).
  cli.add_int("clients", 10, "number of clients (two groups)");
  cli.add_int("epochs", 1, "local warmup epochs before measuring");
  cli.add_int("pool", 300, "total training samples");
  cli.add_int("seed", 7, "random seed");
  cli.add_flag("quick", "tiny configuration for smoke runs");
  cli.parse(argc, argv);

  const bool quick = cli.get_flag("quick");
  const auto clients = static_cast<std::size_t>(cli.get_int("clients"));
  const auto epochs =
      quick ? std::size_t{1} : static_cast<std::size_t>(cli.get_int("epochs"));
  const auto pool_n =
      quick ? std::size_t{300} : static_cast<std::size_t>(cli.get_int("pool"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  // CIFAR-like data, VGG-mini (the paper used CIFAR-10 + VGG-16; see
  // DESIGN.md §3 for the substitution).
  const data::SyntheticGenerator gen(data::SyntheticKind::kCifar10, seed);
  Rng data_rng = Rng(seed).split(1);
  const data::Dataset pool = gen.generate(pool_n, data_rng);

  Rng part_rng = Rng(seed).split(2);
  const partition::Partition part = partition::grouped_label_partition(
      pool, clients, {{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}}, part_rng);
  const auto datasets = partition::materialize(pool, part);

  nn::Model template_model = nn::vgg_mini(gen.image_spec());
  Rng init_rng = Rng(seed).split(3);
  template_model.init_params(init_rng);

  // Local training from the common initialization (exactly the FedClust
  // warmup round).
  std::printf("training %zu clients locally for %zu epoch(s)...\n", clients,
              epochs);
  std::vector<std::vector<float>> client_weights(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    nn::Model m = template_model.clone();
    fl::LocalTrainConfig cfg;
    cfg.epochs = epochs;
    cfg.batch_size = 32;
    cfg.sgd.lr = 0.02;
    cfg.sgd.momentum = 0.9;
    fl::train_local(m, datasets[c], cfg, Rng(seed).split(100 + c));
    client_weights[c] = m.flat_weights();
  }

  // Layer sweep: every weight matrix in depth order (conv -> fc).
  TextTable summary(
      {"Layer", "Block contrast", "ARI of HC cut (k=2)", "Role"});
  std::vector<std::string> layer_names;
  for (const nn::ParamSlice& s : template_model.slices()) {
    if (s.name.ends_with(".weight")) layer_names.push_back(s.name);
  }

  for (std::size_t li = 0; li < layer_names.size(); ++li) {
    const std::string& layer = layer_names[li];
    const auto slices = core::resolve_partial_slices(template_model, layer);
    std::vector<std::vector<float>> partials(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      partials[c] = core::extract_slices(client_weights[c], slices);
    }
    const Matrix dist = cluster::pairwise_euclidean(partials);

    const double contrast = cluster::block_contrast(dist, part.true_groups);
    const auto dendro =
        cluster::agglomerative_cluster(dist, cluster::Linkage::kAverage);
    const double ari =
        cluster::adjusted_rand_index(dendro.cut_k(2), part.true_groups);

    const bool final_layer = li + 1 == layer_names.size();
    summary.new_row()
        .add(layer)
        .add(contrast, 3)
        .add(ari, 3)
        .add(final_layer ? "final (classifier) — FedClust uses this"
                         : (layer.rfind("conv", 0) == 0 ? "conv" : "fc"));

    std::printf("\n-- %s — pairwise Euclidean distance matrix "
                "(clients 0,2,4,6,8 in G1; 1,3,5,7,9 in G2) --\n",
                layer.c_str());
    std::printf("%s", dist.to_string(2).c_str());
  }

  std::printf("\nFig. 1 summary — the block structure should appear only in "
              "the late/fully connected layers:\n\n%s\n",
              summary.to_string().c_str());
  std::printf("paper: Fig. 1(d) (final FC layer) shows the clustering "
              "structure clearly; Fig. 1(a)-(b) (conv layers) do not.\n");
  return 0;
}
