// Drift recovery: static vs dynamic FedClust under sudden concept drift.
//
// A two-group fleet trains past convergence, then half of group 0
// rotates its label space (classes 0-4 -> 5-9) at a scheduled round:
// those clients become distributionally identical to group 1, so the
// static partition is permanently wrong — its cluster-0 model averages
// two conflicting input→label mappings forever. The dynamic arm runs
// the same schedule with drift detection on: the windowed mean-shift
// test alarms within a few evals and the Gaussian soft-membership /
// dendrogram-split recovery repairs the partition online.
//
// Emits BENCH_drift.json (quoted in EXPERIMENTS.md E10). The headline
// gate: the dynamic arm returns to within 2 accuracy points of its
// pre-drift mean while the static arm never does. A determinism
// self-check re-runs the dynamic arm under a different kernel-thread
// count and requires a bit-identical weights-fingerprint chain.
//
//   ./build/bench/drift_recovery [--quick] [--faults] [--out FILE]
//
// --quick is the CI smoke mode (shorter run, same gates); --faults
// additionally enables random crash/staleness fault injection on top of
// the drift schedule — the sanitizer jobs run drift + churn + faults
// together as a chaos smoke.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/fedclust.hpp"
#include "nn/models.hpp"
#include "robust/drift.hpp"

using namespace fedclust;

namespace {

struct Options {
  bool quick = false;
  bool faults = false;
  std::string out = "BENCH_drift.json";
};

constexpr std::size_t kClients = 12;
constexpr double kRecoverMargin = 0.02;  // the 2-point acceptance band

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      opt.quick = true;
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      opt.faults = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      opt.out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: drift_recovery [--quick] [--faults] [--out FILE]\n");
      std::exit(2);
    }
  }
  return opt;
}

/// The drifted cohort: the first half of group 0's slots.
std::vector<std::size_t> drifted_slots(
    const std::vector<std::size_t>& true_groups) {
  std::vector<std::size_t> group0;
  for (std::size_t i = 0; i < true_groups.size(); ++i) {
    if (true_groups[i] == 0) group0.push_back(i);
  }
  group0.resize(group0.size() / 2);
  return group0;
}

fl::Federation build_federation(const Options& opt, std::size_t drift_round,
                                std::size_t kernel_threads,
                                std::vector<std::size_t>* groups_out) {
  bench::Scenario s;
  s.dataset = data::SyntheticKind::kFmnist;
  s.num_clients = kClients;
  s.dirichlet_beta = 0.0;  // crisp two-group partition
  s.within_group_beta = 0.0;
  s.pool_samples = opt.quick ? 720 : 1200;
  s.seed = 29;
  s.model = "mlp";
  s.engine.local.epochs = 2;
  s.engine.local.sgd.lr = 0.05;
  s.engine.local.sgd.momentum = 0.9;
  s.engine.eval_every = 1;
  s.engine.kernel_threads = kernel_threads;

  // Resolve the drifted cohort from the ground-truth groups, then
  // rebuild with the drift schedule attached (the partition is a pure
  // function of the scenario, so both constructions agree).
  std::vector<std::size_t> groups;
  { bench::make_federation(s, &groups); }
  robust::DriftEvent rotate;
  rotate.round = drift_round;
  rotate.kind = robust::DriftKind::kLabelRotation;
  rotate.slots = drifted_slots(groups);
  rotate.rotate_by = 5;  // classes 0-4 -> 5-9: group 0 mimics group 1
  s.engine.drift.enabled = true;
  s.engine.drift.events.push_back(rotate);
  if (opt.faults) {
    // Chaos smoke: random crashes and stale replays on top of the drift
    // schedule (the sanitizer CI leg runs this combination).
    s.engine.faults.enabled = true;
    s.engine.faults.crash_prob = 0.05;
    s.engine.faults.stale_prob = 0.05;
    s.engine.faults.start_round = 1;
  }
  if (groups_out != nullptr) *groups_out = groups;
  return bench::make_federation(s);
}

core::FedClustConfig algo_config(bool dynamic) {
  core::FedClustConfig cfg;
  cfg.warmup_epochs = 1;
  if (dynamic) {
    cfg.dynamic.enabled = true;
    cfg.dynamic.detector.window = 4;
    cfg.dynamic.detector.drop_threshold = 0.05;
    cfg.dynamic.detector.hysteresis = 2;
    cfg.dynamic.detector.cooldown = 2;
    cfg.dynamic.max_recoveries = 3;
  }
  return cfg;
}

bench::DriftBenchResult summarize(const std::string& mode,
                                  std::size_t drift_round,
                                  const fl::RunResult& result) {
  bench::DriftBenchResult r;
  r.mode = mode;
  r.rounds = result.rounds.empty() ? 0 : result.rounds.back().round + 1;
  r.drift_round = drift_round;
  r.recover_margin = kRecoverMargin;
  r.final_acc = result.final_accuracy.mean;
  r.final_clusters =
      result.rounds.empty() ? 0 : result.rounds.back().num_clusters;
  r.trough_acc = 1.0;
  std::uint64_t chain = 1469598103934665603ull;
  for (const fl::RoundMetrics& m : result.rounds) {
    chain = (chain ^ m.weights_fp) * 1099511628211ull;
    r.acc_series.push_back(m.acc_mean);
    r.reclusters += m.reclusters;
    if (m.round < drift_round) {
      r.pre_drift_acc = std::max(r.pre_drift_acc, m.acc_mean);
    } else {
      r.trough_acc = std::min(r.trough_acc, m.acc_mean);
      if (r.detect_round == 0 && m.drift_alarms > 0) {
        r.detect_round = m.round;
      }
      if (r.recover_round == 0 &&
          m.acc_mean >= r.pre_drift_acc - kRecoverMargin) {
        r.recover_round = m.round;
      }
    }
  }
  r.weights_fp_chain = chain;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  const std::size_t drift_round = opt.quick ? 5 : 8;
  const std::size_t rounds = opt.quick ? 22 : 28;

  std::printf("drift_recovery: %zu clients, label rotation at round %zu, "
              "%zu rounds%s\n\n",
              kClients, drift_round, rounds,
              opt.faults ? " (+fault chaos)" : "");

  std::vector<bench::DriftBenchResult> results;
  for (const bool dynamic : {false, true}) {
    fl::Federation fed = build_federation(opt, drift_round,
                                          /*kernel_threads=*/0, nullptr);
    core::FedClust algo(algo_config(dynamic));
    const fl::RunResult res = algo.run(fed, rounds);
    results.push_back(
        summarize(dynamic ? "dynamic" : "static", drift_round, res));
  }
  const bench::DriftBenchResult& statik = results[0];
  const bench::DriftBenchResult& dynamic = results[1];

  std::printf("%-8s %9s %8s %7s %7s %7s %7s %5s\n", "mode", "pre-drift",
              "trough", "final", "detect", "recov", "reclus", "k");
  for (const bench::DriftBenchResult& r : results) {
    char detect[24] = "-", recover[24] = "-";
    if (r.detect_round) {
      std::snprintf(detect, sizeof(detect), "r%zu", r.detect_round);
    }
    if (r.recover_round) {
      std::snprintf(recover, sizeof(recover), "r%zu", r.recover_round);
    }
    std::printf("%-8s %8.1f%% %7.1f%% %6.1f%% %7s %7s %7zu %5zu\n",
                r.mode.c_str(), 100.0 * r.pre_drift_acc, 100.0 * r.trough_acc,
                100.0 * r.final_acc, detect, recover, r.reclusters,
                r.final_clusters);
  }

  // Determinism self-check: the dynamic trajectory (including detection
  // rounds and recovery operations) is bit-identical across kernel
  // threads.
  {
    fl::Federation fed = build_federation(opt, drift_round,
                                          /*kernel_threads=*/2, nullptr);
    core::FedClust algo(algo_config(true));
    const fl::RunResult res = algo.run(fed, rounds);
    const bench::DriftBenchResult replay =
        summarize("dynamic", drift_round, res);
    if (replay.weights_fp_chain != dynamic.weights_fp_chain) {
      std::printf("FAIL: dynamic arm diverges across kernel-thread counts "
                  "(%016llx vs %016llx)\n",
                  static_cast<unsigned long long>(dynamic.weights_fp_chain),
                  static_cast<unsigned long long>(replay.weights_fp_chain));
      return 1;
    }
    std::printf("\ndeterminism: dynamic weights_fp chain %016llx identical "
                "across kernel threads\n",
                static_cast<unsigned long long>(dynamic.weights_fp_chain));
  }

  bench::write_drift_bench_json(opt.out, results);
  std::printf("wrote %s\n", opt.out.c_str());

  // Gates. Detection must fire in every mode; under fault chaos the
  // accuracy comparisons stay informational (crashes perturb both arms).
  if (dynamic.detect_round == 0 || dynamic.reclusters == 0) {
    std::printf("FAIL: dynamic arm never detected/recovered the drift\n");
    return 1;
  }
  if (statik.detect_round != 0 || statik.reclusters != 0) {
    std::printf("FAIL: static arm reported drift machinery activity\n");
    return 1;
  }
  if (!opt.faults) {
    if (dynamic.final_acc <= statik.final_acc + kRecoverMargin) {
      std::printf("FAIL: dynamic %.3f did not beat static %.3f by %.0f pts\n",
                  dynamic.final_acc, statik.final_acc, 100 * kRecoverMargin);
      return 1;
    }
    // The 2-point recovery band is the full-run acceptance; the quick
    // smoke keeps detection + separation gates only (fewer post-drift
    // rounds to converge in).
    if (!opt.quick) {
      if (dynamic.recover_round == 0) {
        std::printf("FAIL: dynamic arm never returned within %.0f pts of "
                    "its pre-drift accuracy\n",
                    100 * kRecoverMargin);
        return 1;
      }
      if (statik.recover_round != 0) {
        std::printf("FAIL: static arm recovered on its own (r%zu) — the "
                    "drift is not a permanent-degradation scenario\n",
                    statik.recover_round);
        return 1;
      }
      std::printf("headline: dynamic recovered to within %.0f pts of "
                  "pre-drift by round %zu (detected r%zu); static stuck at "
                  "%.1f%% vs %.1f%% pre-drift\n",
                  100 * kRecoverMargin, dynamic.recover_round,
                  dynamic.detect_round, 100 * statik.final_acc,
                  100 * statik.pre_drift_acc);
    }
  }
  return 0;
}
