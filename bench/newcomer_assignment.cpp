// Reproduces the §III claim that FedClust "dynamically accommodates
// newcomers in real-time": cluster a base population once, then stream
// held-out clients in and measure whether each is routed to the cluster
// matching its ground-truth data group — without re-running the
// clustering.
//
//   ./newcomer_assignment [--clients 12] [--newcomers 8] [--trials 3]
#include <cstdio>

#include "bench_common.hpp"
#include "cluster/metrics.hpp"
#include "utils/cli.hpp"
#include "utils/table.hpp"

using namespace fedclust;

int main(int argc, char** argv) {
  CliParser cli("newcomer_assignment",
                "Dynamic newcomer admission accuracy (one-shot, no "
                "re-clustering)");
  cli.add_int("clients", 12, "base population size");
  cli.add_int("newcomers", 8, "held-out clients streamed in afterwards");
  cli.add_int("trials", 3, "independent trials (seeds)");
  cli.add_int("pool", 960, "total training samples for the base population");
  cli.add_flag("quick", "tiny configuration for smoke runs");
  cli.parse(argc, argv);

  const bool quick = cli.get_flag("quick");
  const auto base_clients =
      quick ? std::size_t{6} : static_cast<std::size_t>(cli.get_int("clients"));
  const auto newcomers = quick
                             ? std::size_t{4}
                             : static_cast<std::size_t>(cli.get_int("newcomers"));
  const auto trials =
      quick ? std::size_t{1} : static_cast<std::size_t>(cli.get_int("trials"));
  const auto pool_n =
      quick ? std::size_t{400} : static_cast<std::size_t>(cli.get_int("pool"));

  TextTable table({"Trial", "Base clusters", "Base ARI vs truth",
                   "Newcomers correct", "Assignment accuracy"});

  double overall_correct = 0.0;
  double overall_total = 0.0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    bench::Scenario s;
    s.dataset = data::SyntheticKind::kFmnist;
    s.num_clients = base_clients;
    s.dirichlet_beta = -1.0;  // grouped two-cluster population
    // Crisp groups: within-group skew would add outlier clients, and
    // this bench measures newcomer ROUTING, not clustering robustness.
    s.within_group_beta = 0.0;
    s.pool_samples = pool_n;
    s.seed = 500 + trial;
    s.engine.local.epochs = 1;
    s.engine.local.batch_size = 32;
    s.engine.local.sgd.lr = 0.02;
    s.engine.local.sgd.momentum = 0.9;
    s.engine.eval_every = 100;

    std::vector<std::size_t> true_groups;
    fl::Federation fed = bench::make_federation(s, &true_groups);

    // This population has two crisp groups, so the silhouette cut (which
    // favors the coarsest geometric structure) is the right policy here.
    core::FedClust algo({.warmup_epochs = 3,
                         .cut_policy = core::CutPolicy::kSilhouette});
    algo.run(fed, 3);
    const core::ClusteringOutcome& outcome = *algo.last_clustering();
    const double base_ari =
        cluster::adjusted_rand_index(outcome.labels, true_groups);

    // Majority cluster of each ground-truth group (the "right answer"
    // for a newcomer of that group).
    const std::size_t k = cluster::num_clusters(outcome.labels);
    std::vector<std::vector<std::size_t>> votes(2,
                                                std::vector<std::size_t>(k, 0));
    for (std::size_t i = 0; i < true_groups.size(); ++i) {
      ++votes[true_groups[i]][outcome.labels[i]];
    }
    std::vector<std::size_t> expected(2);
    for (std::size_t g = 0; g < 2; ++g) {
      expected[g] = static_cast<std::size_t>(
          std::max_element(votes[g].begin(), votes[g].end()) -
          votes[g].begin());
    }
    // If both groups map to the same majority cluster, the routing check
    // would be vacuous — call that out instead of counting it as 100%.
    const bool degenerate = expected[0] == expected[1];

    // Stream newcomers: group g owns labels {5g..5g+4}.
    const data::SyntheticGenerator gen(s.dataset, s.seed);
    Rng newcomer_rng = Rng(s.seed).split(777);
    std::size_t correct = 0;
    for (std::size_t n = 0; n < newcomers; ++n) {
      const std::size_t g = n % 2;
      std::vector<std::size_t> counts(10, 0);
      for (std::size_t c = 5 * g; c < 5 * g + 5; ++c) counts[c] = 12;
      const data::Dataset newcomer_data =
          gen.generate_per_class(counts, newcomer_rng);

      const std::size_t assigned = algo.assign_newcomer(
          fed.template_model(), newcomer_data, fed.config().local,
          Rng(s.seed).split(888 + n), outcome);
      if (assigned == expected[g]) ++correct;
    }

    overall_correct += static_cast<double>(correct);
    overall_total += static_cast<double>(newcomers);
    table.new_row()
        .add(static_cast<long long>(trial))
        .add(static_cast<long long>(k))
        .add(base_ari, 3)
        .add(std::to_string(correct) + "/" + std::to_string(newcomers) +
             (degenerate ? " (degenerate)" : ""))
        .add(100.0 * static_cast<double>(correct) /
                 static_cast<double>(newcomers),
             1);
    std::fprintf(stderr, "[newcomer] trial %zu: %zu/%zu correct\n", trial,
                 correct, newcomers);
  }

  std::printf("\nNewcomer assignment — base population clustered once, "
              "newcomers admitted without re-clustering\n\n%s\n",
              table.to_string().c_str());
  std::printf("overall assignment accuracy: %.1f%%  (paper claim: newcomers "
              "are accommodated in real time via the stored proximity "
              "information)\n",
              100.0 * overall_correct / overall_total);
  return 0;
}
