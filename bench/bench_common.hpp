// Shared setup for the paper-reproduction bench harnesses: builds the
// synthetic dataset pools, partitions them across clients per the
// paper's Non-IID Dir(0.1) protocol, and constructs the algorithm zoo.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "algorithms/cfl.hpp"
#include "algorithms/fedavg.hpp"
#include "algorithms/ifca.hpp"
#include "algorithms/pacfl.hpp"
#include "core/fedclust.hpp"
#include "data/synthetic.hpp"
#include "partition/partition.hpp"
#include "utils/logging.hpp"

namespace fedclust::bench {

/// One experimental setting (dataset × partition × engine knobs).
struct Scenario {
  data::SyntheticKind dataset = data::SyntheticKind::kFmnist;
  std::size_t num_clients = 20;
  /// Dirichlet concentration; <= 0 selects the explicit two-group
  /// partition used by the Fig. 1 / newcomer experiments.
  double dirichlet_beta = 0.1;
  /// Grouped scenarios only (dirichlet_beta <= 0): Dirichlet skew WITHIN
  /// each group; 0 = deal the group's labels evenly (crisp groups).
  double within_group_beta = 0.5;
  std::size_t pool_samples = 1200;
  double test_fraction = 0.25;
  std::uint64_t seed = 1;
  /// Client model architecture: "lenet5" (default), "vgg_mini" or "mlp".
  std::string model = "lenet5";

  fl::FederationConfig engine;
};

/// Builds the federation for a scenario: LeNet-5 on the emulated dataset,
/// Dirichlet (or grouped) partition, per-client stratified test splits.
/// When `true_groups_out` is non-null it receives the ground-truth groups
/// (empty for Dirichlet partitions).
fl::Federation make_federation(const Scenario& s,
                               std::vector<std::size_t>* true_groups_out =
                                   nullptr);

/// The Table-I algorithm zoo with the default hyperparameters used across
/// the benches. `expected_clusters` parameterizes IFCA's k (it must be
/// chosen a priori — the limitation the paper calls out).
std::vector<std::unique_ptr<fl::Algorithm>> make_algorithms(
    std::size_t expected_clusters);

/// Mean and (population) std of a sample.
struct MeanStd {
  double mean = 0.0;
  double std = 0.0;
};
MeanStd mean_std(const std::vector<double>& values);

// -- kernel micro-bench reporting --------------------------------------------

/// One timed kernel configuration, as emitted into BENCH_kernels.json so
/// later PRs can track the perf trajectory.
struct KernelBenchResult {
  std::string op;       ///< e.g. "conv2d_forward", "matmul"
  std::string variant;  ///< "naive"/"blocked" or "direct"/"im2col"
  std::string shape;    ///< human-readable shape tag
  double ms = 0.0;      ///< best-of-reps wall time per call
  double gflops = 0.0;  ///< sustained throughput (0 if flop count n/a)
  double speedup = 1.0; ///< vs the baseline variant of the same (op, shape)
};

/// Writes results as a machine-readable JSON array.
void write_kernel_bench_json(const std::string& path,
                             const std::vector<KernelBenchResult>& results);

// -- robustness reporting -----------------------------------------------------

/// One (algorithm, attack scenario, aggregation rule) cell of the
/// Byzantine-robustness experiment, as emitted into BENCH_robustness.json.
struct RobustnessBenchResult {
  std::string algorithm;  ///< e.g. "FedAvg", "FedClust"
  std::string scenario;   ///< "clean" or "attacked"
  std::string rule;       ///< aggregation rule name
  double acc_mean = 0.0;  ///< final mean per-client accuracy
  double acc_std = 0.0;
  /// Final accuracy as a fraction of the same algorithm's fault-free
  /// accuracy (1.0 for the clean runs themselves).
  double clean_retention = 1.0;
};

/// Writes robustness results as a machine-readable JSON array.
void write_robustness_bench_json(
    const std::string& path,
    const std::vector<RobustnessBenchResult>& results);

// -- fleet-scale reporting ----------------------------------------------------

/// Current resident set size in MiB (Linux /proc/self/status VmRSS);
/// 0 when the file is unavailable.
double current_rss_mb();
/// Peak resident set size in MiB since process start (VmHWM); 0 when
/// unavailable. Process-wide high-water mark — it never decreases.
double peak_rss_mb();
/// Self-check: throws fedclust::Error when the peak RSS exceeds
/// `limit_mb`. A limit of 0 (or a host without /proc) disables the check.
void require_max_rss(double limit_mb);

/// One stage of the fleet_scale sweep, as emitted into BENCH_fleet.json.
struct FleetBenchResult {
  std::size_t clients = 0;        ///< fleet size
  std::size_t cohort = 0;         ///< sampled clients per round
  std::size_t rounds = 0;
  std::size_t edges = 0;          ///< edge aggregators in the tree
  double round_ms_mean = 0.0;     ///< mean round wall-clock
  double round_ms_p50 = 0.0;      ///< round wall-clock percentiles
  double round_ms_p99 = 0.0;      ///< (StreamingHistogram estimates,
  double round_ms_p999 = 0.0;     ///<  ±2% relative)
  double acc_mean_last = 0.0;     ///< cohort accuracy after the last round
  double vm_rss_mb = 0.0;         ///< resident set after the stage
  double vm_hwm_mb = 0.0;         ///< process peak RSS at stage end
  double rss_limit_mb = 0.0;      ///< --max-rss-mb self-check (0 = off)
  std::uint64_t upload_bytes = 0;
  std::uint64_t download_bytes = 0;
  /// Root-link float32 traffic per round: edges × model (tree) vs
  /// cohort × model (flat) — the fan-in reduction the tree buys.
  std::uint64_t server_link_floats = 0;
  std::uint64_t flat_link_floats = 0;
  std::uint64_t weights_fp_chain = 0;  ///< FNV-1a chain of round fingerprints
  std::size_t resident_shards = 0;     ///< client shards cached at stage end
};

/// Writes fleet-scale results as a machine-readable JSON array.
void write_fleet_bench_json(const std::string& path,
                            const std::vector<FleetBenchResult>& results);

// -- compression reporting ----------------------------------------------------

/// One (algorithm, upload codec) cell of the bytes-vs-accuracy sweep, as
/// emitted into BENCH_compress.json by `comm_cost --codec`.
struct CompressBenchResult {
  std::string algorithm;  ///< e.g. "FedAvg", "IFCA", "FedClust"
  std::string codec;      ///< upload codec name ("identity", "int8", ...)
  std::size_t rounds = 0;
  std::uint64_t upload_bytes = 0;    ///< whole-run encoded upload traffic
  std::uint64_t download_bytes = 0;  ///< whole-run download traffic
  /// identity-codec upload bytes / this codec's upload bytes (>= 1 means
  /// the codec saved traffic; identity itself is exactly 1).
  double upload_reduction = 1.0;
  double acc_mean = 0.0;  ///< final mean per-client accuracy
  double acc_std = 0.0;
  /// Accuracy points relative to the same algorithm's identity run
  /// (negative = the codec cost accuracy).
  double acc_delta_pts = 0.0;
  /// On the per-algorithm Pareto front: no other codec for this
  /// algorithm uploads fewer (or equal) bytes AND reaches at least this
  /// accuracy, with one of the two strict.
  bool pareto = false;
};

/// Writes compression results as a machine-readable JSON array.
void write_compress_bench_json(const std::string& path,
                               const std::vector<CompressBenchResult>& results);

// -- async time-to-accuracy reporting -----------------------------------------

/// One (algorithm, engine mode, network profile) cell of the async
/// throughput sweep, as emitted into BENCH_async.json.
struct AsyncBenchResult {
  std::string algorithm;  ///< "FedAvg" | "FedClust"
  std::string mode;       ///< "sync" | "async_k4" | "async_k16" | ...
  std::string profile;    ///< "lan" | "cellular" | "heterogeneous"
  std::size_t buffer_k = 0;  ///< 0 for the sync baseline
  std::size_t rounds = 0;    ///< sync rounds or async flushes executed
  double target_acc = 0.0;
  bool reached = false;             ///< the run hit target_acc
  double seconds_to_target = 0.0;   ///< sim_seconds at the first hit
  double seconds_total = 0.0;       ///< sim_seconds at run end
  double final_acc = 0.0;
  double upload_mb = 0.0;
  double download_mb = 0.0;
  /// sync seconds_to_target / this mode's, within (algorithm, profile);
  /// 1.0 for the sync baseline itself, 0 when either side missed target.
  double speedup_vs_sync = 0.0;
};

/// Writes async results as a machine-readable JSON array.
void write_async_bench_json(const std::string& path,
                            const std::vector<AsyncBenchResult>& results);

// -- drift-recovery reporting -------------------------------------------------

/// One arm (static or dynamic FedClust) of the drift-recovery
/// experiment, as emitted into BENCH_drift.json by bench/drift_recovery.
struct DriftBenchResult {
  std::string mode;  ///< "static" | "dynamic"
  std::size_t rounds = 0;
  std::size_t drift_round = 0;   ///< round the scheduled drift hits
  double pre_drift_acc = 0.0;    ///< mean accuracy just before the drift
  double trough_acc = 0.0;       ///< worst mean accuracy at/after the drift
  double final_acc = 0.0;
  std::size_t detect_round = 0;  ///< first round with a drift alarm (0 = never)
  std::size_t recover_round = 0; ///< first post-drift round back within
                                 ///< `recover_margin` of pre-drift (0 = never)
  double recover_margin = 0.0;   ///< accuracy-points recovery band
  std::size_t reclusters = 0;    ///< split/merge recoveries applied
  std::size_t final_clusters = 0;
  /// FNV-1a chain over the per-round weights fingerprints — equal chains
  /// mean bit-identical trajectories (the determinism self-check re-runs
  /// the dynamic arm under a different kernel-thread count).
  std::uint64_t weights_fp_chain = 0;
  /// Per-round mean accuracy series (the recovery curve).
  std::vector<double> acc_series;
};

/// Writes drift-recovery results as a machine-readable JSON array.
void write_drift_bench_json(const std::string& path,
                            const std::vector<DriftBenchResult>& results);

// -- serving reporting --------------------------------------------------------

/// One (router mode, batch size) cell of the serving-throughput sweep,
/// as emitted into BENCH_serving.json.
struct ServingBenchResult {
  std::string model;           ///< served architecture ("lenet5", ...)
  std::string mode;            ///< "hard" | "soft" | "ensemble"
  std::size_t max_batch = 0;   ///< batcher cap for this cell
  std::size_t workers = 0;     ///< engine worker threads
  std::size_t requests = 0;    ///< requests served
  std::size_t clusters = 0;    ///< heads in the frozen snapshot
  double rps = 0.0;            ///< requests per second (wall clock)
  double p50_ms = 0.0;         ///< request latency percentiles
  double p99_ms = 0.0;         ///< (submit -> fulfilled)
  double p999_ms = 0.0;
  double mean_batch_rows = 0.0;  ///< realized rows per forward batch
  double accuracy = 0.0;         ///< top-1 on the served test slice
};

/// Writes serving results as a machine-readable JSON array.
void write_serving_bench_json(const std::string& path,
                              const std::vector<ServingBenchResult>& results);

}  // namespace fedclust::bench
