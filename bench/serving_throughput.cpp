// Serving throughput: requests/sec and latency tails of the batched
// inference engine, swept over router mode × batch size on LeNet-5.
//
// Trains a small grouped FedClust federation, freezes the cluster
// models into a serving snapshot, then replays a stream of synthetic
// requests (image + the client's warmup partial weights as routing
// features) through the BatchingEngine from several producer threads.
// Each (mode, max_batch) cell reports throughput, p50/p99/p999 request
// latency (StreamingHistogram), realized batch occupancy, and top-1
// accuracy on the served stream; everything lands in BENCH_serving.json.
//
//   ./serving_throughput                     # full sweep
//   ./serving_throughput --self-check        # 1k requests, parity gate
#include <chrono>
#include <cstdio>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "serve/batching.hpp"
#include "serve/registry.hpp"
#include "serve/router.hpp"
#include "utils/cli.hpp"
#include "utils/table.hpp"

using namespace fedclust;

namespace {

std::vector<std::size_t> parse_size_list(const std::string& csv) {
  std::vector<std::size_t> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    out.push_back(static_cast<std::size_t>(std::stoul(item)));
  }
  FEDCLUST_REQUIRE(!out.empty(), "empty size list '" << csv << "'");
  return out;
}

std::vector<std::string> parse_string_list(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(item);
  FEDCLUST_REQUIRE(!out.empty(), "empty list '" << csv << "'");
  return out;
}

struct RequestPool {
  std::vector<Tensor> inputs;                // (1, C, H, W) each
  std::vector<std::int32_t> labels;          // ground truth per input
  std::vector<std::vector<float>> features;  // routing vector per input
};

/// Distinct samples the stream cycles through (request i uses slot
/// i % inputs.size()). Each slot impersonates client i % num_clients:
/// its routing features are that client's warmup upload and its image
/// is drawn from that client's ground-truth label group — a client's
/// serving traffic follows its own distribution, which is exactly the
/// regime cluster models exist for.
RequestPool make_request_pool(const bench::Scenario& s,
                              const std::vector<std::size_t>& true_groups,
                              const core::ClusteringOutcome& outcome,
                              std::size_t distinct) {
  const data::SyntheticGenerator gen(s.dataset, s.seed + 7);
  Rng rng = Rng(s.seed).split(105);
  const std::size_t classes = gen.image_spec().classes;
  const std::size_t groups = 2;  // make_federation's grouped partition
  const std::size_t per_group = classes / groups;

  std::vector<data::Dataset> group_pool;
  for (std::size_t g = 0; g < groups; ++g) {
    std::vector<std::size_t> counts(classes, 0);
    for (std::size_t l = g * per_group; l < (g + 1) * per_group; ++l) {
      counts[l] = distinct / (groups * per_group) + 1;
    }
    group_pool.push_back(gen.generate_per_class(counts, rng));
  }

  RequestPool out;
  std::vector<std::size_t> cursor(groups, 0);
  for (std::size_t i = 0; i < distinct; ++i) {
    const std::size_t client = i % s.num_clients;
    const std::size_t g = true_groups[client];
    const data::Dataset& pool = group_pool[g];
    const std::size_t idx[] = {cursor[g]++ % pool.size()};
    out.inputs.push_back(pool.gather(idx).images);
    out.labels.push_back(pool.label(idx[0]));
    out.features.push_back(outcome.partial_weights[client]);
  }
  return out;
}

bench::ServingBenchResult run_cell(const serve::ModelRegistry& registry,
                                   const RequestPool& pool,
                                   serve::RouteMode mode,
                                   std::size_t max_batch, std::size_t workers,
                                   std::size_t producers,
                                   std::size_t requests,
                                   ThreadPool* kernel_pool) {
  serve::EngineConfig cfg;
  cfg.router.mode = mode;
  cfg.max_batch = max_batch;
  cfg.max_delay_ms = 0.2;
  cfg.workers = workers;
  cfg.kernel_pool = kernel_pool;
  serve::BatchingEngine engine(registry, cfg);

  std::vector<std::vector<std::future<serve::InferenceResult>>> futures(
      producers);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (std::size_t r = p; r < requests; r += producers) {
        const std::size_t i = r % pool.inputs.size();
        futures[p].push_back(
            engine.submit(r, pool.inputs[i], pool.features[i]));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  std::size_t correct = 0;
  double batch_rows_sum = 0.0;
  for (std::size_t p = 0; p < producers; ++p) {
    for (auto& f : futures[p]) {
      const serve::InferenceResult res = f.get();
      const std::size_t i = res.id % pool.inputs.size();
      std::size_t top = 0;
      for (std::size_t j = 1; j < res.probs.size(); ++j) {
        if (res.probs[j] > res.probs[top]) top = j;
      }
      if (static_cast<std::int32_t>(top) == pool.labels[i]) ++correct;
      batch_rows_sum += static_cast<double>(res.batch_rows);
    }
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const serve::EngineStats stats = engine.stats();
  bench::ServingBenchResult out;
  out.mode = serve::route_mode_name(mode);
  out.max_batch = max_batch;
  out.workers = workers;
  out.requests = requests;
  out.clusters = registry.snapshot()->num_clusters();
  out.rps = static_cast<double>(requests) / seconds;
  out.p50_ms = stats.latency_ms.p50();
  out.p99_ms = stats.latency_ms.p99();
  out.p999_ms = stats.latency_ms.p999();
  out.mean_batch_rows = batch_rows_sum / static_cast<double>(requests);
  out.accuracy =
      static_cast<double>(correct) / static_cast<double>(requests);
  return out;
}

/// Gate: every batched result must be bit-identical to the synchronous
/// unbatched path, per mode. Throws on divergence.
void check_parity(const serve::ModelRegistry& registry,
                  const RequestPool& pool, serve::RouteMode mode,
                  std::size_t sample) {
  serve::EngineConfig ref_cfg;
  ref_cfg.router.mode = mode;
  serve::BatchingEngine reference(registry, ref_cfg);

  serve::EngineConfig cfg = ref_cfg;
  cfg.max_batch = 32;
  cfg.max_delay_ms = 1.0;
  cfg.workers = 4;
  serve::BatchingEngine engine(registry, cfg);

  std::vector<std::future<serve::InferenceResult>> futures;
  for (std::size_t r = 0; r < sample; ++r) {
    const std::size_t i = r % pool.inputs.size();
    futures.push_back(engine.submit(r, pool.inputs[i], pool.features[i]));
  }
  for (std::size_t r = 0; r < sample; ++r) {
    const std::size_t i = r % pool.inputs.size();
    const serve::InferenceResult batched = futures[r].get();
    const serve::InferenceResult unbatched =
        reference.infer(r, pool.inputs[i], pool.features[i]);
    FEDCLUST_REQUIRE(batched.probs == unbatched.probs &&
                         batched.cluster == unbatched.cluster &&
                         batched.weights == unbatched.weights,
                     "batched result diverged from unbatched ("
                         << serve::route_mode_name(mode) << ", request " << r
                         << ")");
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("serving_throughput",
                "Batched cluster-model inference: requests/sec and latency "
                "tails vs batch size, router mode and architecture");
  cli.add_int("clients", 10, "federation clients (grouped two-cluster)");
  cli.add_int("pool", 800, "training pool samples");
  cli.add_int("rounds", 5, "federated training rounds before freezing");
  cli.add_int("requests", 2000, "requests per (mode, batch) cell");
  cli.add_int("distinct", 256, "distinct request samples cycled through");
  cli.add_int("producers", 4, "request producer threads");
  cli.add_int("workers", 2, "engine worker threads");
  cli.add_int("kernel-threads", 0, "intra-op GEMM threads (0 = none)");
  cli.add_string("batches", "1,8,32,128", "max_batch values to sweep");
  cli.add_string("modes", "hard,soft,ensemble", "router modes to sweep");
  cli.add_string("models", "lenet5,vgg_mini",
                 "architectures to sweep (lenet5|vgg_mini|mlp); vgg_mini "
                 "sweeps batches 1,32 and the hard router only");
  cli.add_int("seed", 1, "random seed");
  cli.add_string("out", "BENCH_serving.json", "output JSON path");
  cli.add_flag("self-check",
               "reduced run (1k requests, batches 1,32) that hard-fails "
               "unless batched == unbatched bitwise and throughput is sane");
  cli.parse(argc, argv);

  const bool self_check = cli.get_flag("self-check");
  const std::size_t kernel_threads =
      static_cast<std::size_t>(cli.get_int("kernel-threads"));
  std::unique_ptr<ThreadPool> kernel_pool;
  if (kernel_threads > 0) {
    kernel_pool = std::make_unique<ThreadPool>(kernel_threads);
  }

  // Self-check pins the fast architecture; the parity gate itself is
  // architecture-agnostic.
  const std::vector<std::string> model_names =
      self_check ? std::vector<std::string>{"lenet5"}
                 : parse_string_list(cli.get_string("models"));

  std::vector<bench::ServingBenchResult> results;
  for (const std::string& model_name : model_names) {
    bench::Scenario s;
    // vgg_mini needs 8-divisible image dims; pair it with the 32x32
    // CIFAR-10 emulation (the paper's VGG pairing). Everything else
    // serves the 28x28 FMNIST emulation.
    s.dataset = model_name == "vgg_mini" ? data::SyntheticKind::kCifar10
                                         : data::SyntheticKind::kFmnist;
    s.num_clients = static_cast<std::size_t>(cli.get_int("clients"));
    s.dirichlet_beta = 0.0;  // grouped: two crisp clusters to serve
    s.within_group_beta = 0.0;
    s.pool_samples = static_cast<std::size_t>(cli.get_int("pool"));
    s.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    s.model = model_name;
    s.engine.local.epochs = 2;
    s.engine.local.batch_size = 32;
    s.engine.threads = 4;

    std::printf("training FedClust/%s (%zu clients, %lld rounds) ...\n",
                model_name.c_str(), s.num_clients,
                static_cast<long long>(cli.get_int("rounds")));
    std::vector<std::size_t> true_groups;
    fl::Federation fed = bench::make_federation(s, &true_groups);
    core::FedClust algo({.warmup_epochs = 2, .rel_factor = 0.6});
    const fl::RunResult run =
        algo.run(fed, static_cast<std::size_t>(cli.get_int("rounds")));
    const core::ClusteringOutcome& outcome = *algo.last_clustering();

    serve::ModelRegistry registry;
    registry.publish(serve::freeze(fed.template_model(), run, outcome));
    std::printf("frozen snapshot: %zu clusters, fp %016llx\n",
                registry.snapshot()->num_clusters(),
                static_cast<unsigned long long>(
                    registry.snapshot()->weights_fp));

    const RequestPool pool = make_request_pool(
        s, true_groups, outcome,
        static_cast<std::size_t>(cli.get_int("distinct")));

    const std::size_t requests =
        self_check ? 1000 : static_cast<std::size_t>(cli.get_int("requests"));
    // vgg_mini forwards are ~20x a LeNet-5 forward; sweep the corner
    // cells (unbatched vs batched, hard router) rather than the full
    // grid so the heavy row stays affordable.
    const bool reduced = model_name == "vgg_mini";
    const std::vector<std::size_t> batches =
        self_check || reduced ? std::vector<std::size_t>{1, 32}
                              : parse_size_list(cli.get_string("batches"));
    std::vector<serve::RouteMode> modes;
    if (reduced) {
      modes.push_back(serve::RouteMode::kHard);
    } else {
      std::stringstream ss(cli.get_string("modes"));
      std::string item;
      while (std::getline(ss, item, ',')) {
        modes.push_back(serve::parse_route_mode(item));
      }
    }

    for (const serve::RouteMode mode : modes) {
      check_parity(registry, pool, mode, self_check ? 200 : 64);
      for (const std::size_t max_batch : batches) {
        bench::ServingBenchResult r = run_cell(
            registry, pool, mode, max_batch,
            static_cast<std::size_t>(cli.get_int("workers")),
            static_cast<std::size_t>(cli.get_int("producers")), requests,
            kernel_pool.get());
        r.model = model_name;
        std::printf("  %-8s %-8s batch %3zu: %8.0f req/s, p50 %.3f ms, "
                    "p99 %.3f ms, rows/batch %.1f, acc %.4f\n",
                    r.model.c_str(), r.mode.c_str(), r.max_batch, r.rps,
                    r.p50_ms, r.p99_ms, r.mean_batch_rows, r.accuracy);
        FEDCLUST_REQUIRE(!self_check || r.rps > 0.0,
                         "self-check: throughput must be positive");
        results.push_back(std::move(r));
      }
    }
  }

  TextTable table({"model", "mode", "max batch", "req/s", "p50 ms", "p99 ms",
                   "p99.9 ms", "rows/batch", "acc"});
  for (const bench::ServingBenchResult& r : results) {
    table.new_row()
        .add(r.model)
        .add(r.mode)
        .add(static_cast<long long>(r.max_batch))
        .add(r.rps, 0)
        .add(r.p50_ms, 3)
        .add(r.p99_ms, 3)
        .add(r.p999_ms, 3)
        .add(r.mean_batch_rows, 1)
        .add(r.accuracy, 4);
  }
  std::printf("%s", table.to_string().c_str());

  bench::write_serving_bench_json(cli.get_string("out"), results);
  std::printf("wrote %s\n", cli.get_string("out").c_str());
  if (self_check) std::printf("self-check passed\n");
  return 0;
}
