// Reproduces the paper's communication-cost claim (abstract + §III):
// FedClust forms clusters in ONE communication round uploading only
// final-layer weights, whereas iterative CFL/IFCA keep paying full-model
// traffic while clusters stabilize, and IFCA additionally multiplies the
// download by k.
//
// For every method we report, on the grouped two-cluster workload:
//   * bytes uploaded/downloaded during cluster formation,
//   * total traffic for the whole run,
//   * rounds and bytes to reach a target accuracy,
//   * and, under a simulated network profile, the simulated wall-clock
//     seconds to reach the target (time-to-accuracy) plus total
//     simulated time — the axis where byte savings turn into speed.
//
//   ./comm_cost [--rounds 12] [--clients 20] [--target 0.6]
//               [--profile lan|wan|cellular|heterogeneous|none|all]
//               [--straggler 1.0]
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "net/link.hpp"
#include "utils/cli.hpp"
#include "utils/table.hpp"

using namespace fedclust;

namespace {

std::string human_bytes(double b) {
  char buf[32];
  if (b >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", b / 1e9);
  } else if (b >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", b / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f kB", b / 1e3);
  }
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("comm_cost",
                "Communication cost: one-shot FedClust vs iterative CFL");
  cli.add_int("rounds", 12, "communication rounds per run");
  cli.add_int("clients", 20, "number of clients");
  cli.add_int("pool", 1200, "total training samples");
  cli.add_double("target", 0.6, "accuracy target for rounds-to-target");
  cli.add_int("seed", 3, "random seed");
  cli.add_string("profile", "lan",
                 "network profile: none, lan, wan, cellular, heterogeneous, "
                 "or all");
  cli.add_double("straggler", 1.0,
                 "fraction of uploads a simulated round waits for");
  cli.add_flag("quick", "tiny configuration for smoke runs");
  cli.parse(argc, argv);

  const bool quick = cli.get_flag("quick");
  bench::Scenario s;
  s.dataset = data::SyntheticKind::kFmnist;
  s.num_clients =
      quick ? std::size_t{8} : static_cast<std::size_t>(cli.get_int("clients"));
  s.dirichlet_beta = -1.0;  // grouped two-cluster workload
  s.pool_samples =
      quick ? std::size_t{400} : static_cast<std::size_t>(cli.get_int("pool"));
  s.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  s.engine.local.epochs = 1;
  s.engine.local.batch_size = 32;
  s.engine.local.sgd.lr = 0.02;
  s.engine.local.sgd.momentum = 0.9;
  s.engine.eval_every = 1;  // per-round accuracy for rounds-to-target

  const auto rounds =
      quick ? std::size_t{5} : static_cast<std::size_t>(cli.get_int("rounds"));
  const double target = cli.get_double("target");

  std::vector<std::string> profiles;
  const std::string profile_arg = cli.get_string("profile");
  if (profile_arg == "all") {
    profiles.push_back("none");
    for (net::Profile p : net::all_profiles()) {
      profiles.emplace_back(net::to_string(p));
    }
  } else {
    profiles.push_back(profile_arg);  // validated below (or "none")
  }

  for (const std::string& profile : profiles) {
    const bool simulated = profile != "none";
    bench::Scenario sp = s;
    if (simulated) {
      sp.engine.network.enabled = true;
      sp.engine.network.profile = net::profile_from_string(profile);
      sp.engine.network.straggler_frac = cli.get_double("straggler");
    }

    TextTable table({"Method", "Formation upload", "Formation download",
                     "Total upload", "Total download", "Rounds to target",
                     "Bytes to target", "Time to target", "Sim total (s)",
                     "Final acc (%)"});

    auto algorithms = bench::make_algorithms(/*expected_clusters=*/2);
    for (auto& algo : algorithms) {
      fl::Federation fed = bench::make_federation(sp);
      const fl::RunResult r = algo->run(fed, rounds);

      // "Formation" = round 0 for the one-shot methods; for the iterative
      // ones it is simply their first-round traffic (they never stop
      // paying full price, which is the point of the comparison).
      const auto& up = fed.comm().round_upload();
      const auto& down = fed.comm().round_download();

      std::size_t hit_round = 0;
      std::uint64_t hit_bytes = 0;
      const bool reached = r.rounds_to_accuracy(target, hit_round, hit_bytes);
      double hit_seconds = 0.0;
      const bool timed =
          simulated && r.time_to_accuracy(target, hit_seconds);
      char seconds_buf[32] = "-";
      if (timed) {
        std::snprintf(seconds_buf, sizeof(seconds_buf), "%.1f s",
                      hit_seconds);
      }

      table.new_row()
          .add(algo->name())
          .add(human_bytes(static_cast<double>(up.empty() ? 0 : up[0])))
          .add(human_bytes(static_cast<double>(down.empty() ? 0 : down[0])))
          .add(human_bytes(static_cast<double>(fed.comm().total_upload())))
          .add(human_bytes(static_cast<double>(fed.comm().total_download())))
          .add(reached ? std::to_string(hit_round + 1) : std::string("-"))
          .add(reached ? human_bytes(static_cast<double>(hit_bytes))
                       : std::string("-"))
          .add(seconds_buf)
          .add(simulated ? fed.sim_time() : 0.0, 1)
          .add(100.0 * r.final_accuracy.mean, 2);

      std::fprintf(stderr, "[comm] %-8s / %-13s done (final %.2f%%)\n",
                   algo->name().c_str(), profile.c_str(),
                   100.0 * r.final_accuracy.mean);
    }

    std::printf("\nCommunication cost — grouped 2-cluster workload (FMNIST "
                "stand-in), %zu clients, %zu rounds, target %.0f%%\n",
                sp.num_clients, rounds, 100.0 * target);
    if (simulated) {
      std::printf("network profile: %s (straggler cutoff %.0f%%)\n\n",
                  profile.c_str(), 100.0 * sp.engine.network.straggler_frac);
    } else {
      std::printf("network: disabled (bare float32 byte accounting)\n\n");
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  std::printf(
      "\nexpected shape (paper): FedClust's formation round uploads only "
      "the\nfinal layer (~%.1fx smaller than a full model); IFCA downloads "
      "k models per round; CFL needs many full rounds before clusters "
      "stabilize.\n",
      61706.0 / 850.0);  // LeNet-5 total vs final-layer weights
  return 0;
}
