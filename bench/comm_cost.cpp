// Reproduces the paper's communication-cost claim (abstract + §III):
// FedClust forms clusters in ONE communication round uploading only
// final-layer weights, whereas iterative CFL/IFCA keep paying full-model
// traffic while clusters stabilize, and IFCA additionally multiplies the
// download by k.
//
// For every method we report, on the grouped two-cluster workload:
//   * bytes uploaded/downloaded during cluster formation,
//   * total traffic for the whole run,
//   * rounds and bytes to reach a target accuracy,
//   * and, under a simulated network profile, the simulated wall-clock
//     seconds to reach the target (time-to-accuracy) plus total
//     simulated time — the axis where byte savings turn into speed.
//
// With --codec the bench switches to the update-compression sweep: every
// (algorithm × upload codec) cell runs the standard Dirichlet benchmark
// with the network simulator off, so the meter reports exact encoded
// bytes, and the per-algorithm bytes-vs-accuracy Pareto front lands in
// BENCH_compress.json (identity is always run first as the baseline).
//
//   ./comm_cost [--rounds 12] [--clients 20] [--target 0.6]
//               [--profile lan|wan|cellular|heterogeneous|none|all]
//               [--straggler 1.0]
//   ./comm_cost --codec all [--beta 0.1] [--out BENCH_compress.json]
//   ./comm_cost --codec int8,topk ...
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "compress/codec.hpp"
#include "net/link.hpp"
#include "utils/cli.hpp"
#include "utils/error.hpp"
#include "utils/table.hpp"

using namespace fedclust;

namespace {

/// Parses --codec: "all", or a comma list of codec names. Identity is
/// forced in front as the reduction/accuracy baseline row.
std::vector<compress::CodecKind> parse_codecs(const std::string& arg) {
  using compress::CodecKind;
  if (arg == "all") {
    return {CodecKind::kIdentity, CodecKind::kInt8,    CodecKind::kInt4,
            CodecKind::kTopK,     CodecKind::kSignSgd, CodecKind::kDelta};
  }
  std::vector<CodecKind> codecs = {CodecKind::kIdentity};
  std::size_t pos = 0;
  while (pos <= arg.size()) {
    const std::size_t comma = arg.find(',', pos);
    const std::string tok =
        arg.substr(pos, comma == std::string::npos ? std::string::npos
                                                   : comma - pos);
    CodecKind kind;
    FEDCLUST_REQUIRE(compress::codec_from_string(tok, &kind),
                     "unknown codec '" << tok
                                       << "' (want identity, int8, int4, "
                                          "topk, sign, or delta)");
    if (kind != CodecKind::kIdentity) codecs.push_back(kind);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return codecs;
}

std::string human_bytes(double b) {
  char buf[32];
  if (b >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", b / 1e9);
  } else if (b >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", b / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f kB", b / 1e3);
  }
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("comm_cost",
                "Communication cost: one-shot FedClust vs iterative CFL");
  cli.add_int("rounds", 12, "communication rounds per run");
  cli.add_int("clients", 20, "number of clients");
  cli.add_int("pool", 1200, "total training samples");
  cli.add_double("target", 0.6, "accuracy target for rounds-to-target");
  cli.add_int("seed", 3, "random seed");
  cli.add_string("profile", "lan",
                 "network profile: none, lan, wan, cellular, heterogeneous, "
                 "or all");
  cli.add_double("straggler", 1.0,
                 "fraction of uploads a simulated round waits for");
  cli.add_string("codec", "none",
                 "update-compression sweep: none, all, or a comma list of "
                 "identity,int8,int4,topk,sign,delta");
  cli.add_double("beta", 0.1,
                 "Dirichlet concentration for the --codec sweep");
  cli.add_string("out", "BENCH_compress.json",
                 "JSON output path for the --codec sweep");
  cli.add_flag("quick", "tiny configuration for smoke runs");
  cli.parse(argc, argv);

  const bool quick = cli.get_flag("quick");
  bench::Scenario s;
  s.dataset = data::SyntheticKind::kFmnist;
  s.num_clients =
      quick ? std::size_t{8} : static_cast<std::size_t>(cli.get_int("clients"));
  s.dirichlet_beta = -1.0;  // grouped two-cluster workload
  s.pool_samples =
      quick ? std::size_t{400} : static_cast<std::size_t>(cli.get_int("pool"));
  s.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  s.engine.local.epochs = 1;
  s.engine.local.batch_size = 32;
  s.engine.local.sgd.lr = 0.02;
  s.engine.local.sgd.momentum = 0.9;
  s.engine.eval_every = 1;  // per-round accuracy for rounds-to-target

  const auto rounds =
      quick ? std::size_t{5} : static_cast<std::size_t>(cli.get_int("rounds"));
  const double target = cli.get_double("target");

  // -- update-compression sweep ---------------------------------------------
  const std::string codec_arg = cli.get_string("codec");
  if (codec_arg != "none") {
    const std::vector<compress::CodecKind> codecs = parse_codecs(codec_arg);

    // The standard Dirichlet benchmark, network off: CommMeter reports
    // exact encoded bytes, trajectories match the weights_fp tests.
    bench::Scenario sweep = s;
    sweep.dirichlet_beta = cli.get_double("beta");

    // A representative slice of the zoo: a plain averager, a proximal
    // variant, the k-model iterative clusterer, and the paper's one-shot
    // method. (All six algorithms route through the same transport; four
    // keeps the 4-codec × 4-algorithm grid affordable.)
    auto zoo = bench::make_algorithms(/*expected_clusters=*/2);
    std::vector<std::unique_ptr<fl::Algorithm>> algos;
    for (auto& algo : zoo) {
      const std::string n = algo->name();
      if (n == "FedAvg" || n == "FedProx" || n == "IFCA" || n == "FedClust") {
        algos.push_back(std::move(algo));
      }
    }

    TextTable table({"Method", "Codec", "Upload", "Download", "Upload redux",
                     "Final acc (%)", "dAcc (pts)", "Pareto"});
    std::vector<bench::CompressBenchResult> results;
    for (auto& algo : algos) {
      std::vector<bench::CompressBenchResult> rows;
      std::uint64_t identity_up = 0;
      double identity_acc = 0.0;
      for (compress::CodecKind kind : codecs) {
        bench::Scenario sp = sweep;
        sp.engine.compression.enabled = true;
        sp.engine.compression.upload = kind;
        sp.engine.compression.download = compress::CodecKind::kIdentity;

        fl::Federation fed = bench::make_federation(sp);
        const fl::RunResult r = algo->run(fed, rounds);

        bench::CompressBenchResult row;
        row.algorithm = algo->name();
        row.codec = compress::to_string(kind);
        row.rounds = rounds;
        row.upload_bytes = fed.comm().total_upload();
        row.download_bytes = fed.comm().total_download();
        row.acc_mean = r.final_accuracy.mean;
        row.acc_std = r.final_accuracy.std;
        if (kind == compress::CodecKind::kIdentity) {
          identity_up = row.upload_bytes;
          identity_acc = row.acc_mean;
        }
        row.upload_reduction =
            row.upload_bytes == 0
                ? 1.0
                : static_cast<double>(identity_up) /
                      static_cast<double>(row.upload_bytes);
        row.acc_delta_pts = 100.0 * (row.acc_mean - identity_acc);
        rows.push_back(row);
        std::fprintf(stderr, "[codec] %-8s / %-8s done (%.2f%%, %s up)\n",
                     row.algorithm.c_str(), row.codec.c_str(),
                     100.0 * row.acc_mean,
                     human_bytes(static_cast<double>(row.upload_bytes))
                         .c_str());
      }
      // Per-algorithm Pareto front over (upload bytes down, accuracy up).
      for (std::size_t i = 0; i < rows.size(); ++i) {
        bool dominated = false;
        for (std::size_t j = 0; j < rows.size() && !dominated; ++j) {
          if (j == i) continue;
          dominated = rows[j].upload_bytes <= rows[i].upload_bytes &&
                      rows[j].acc_mean >= rows[i].acc_mean &&
                      (rows[j].upload_bytes < rows[i].upload_bytes ||
                       rows[j].acc_mean > rows[i].acc_mean);
        }
        rows[i].pareto = !dominated;
      }
      for (const bench::CompressBenchResult& row : rows) {
        table.new_row()
            .add(row.algorithm)
            .add(row.codec)
            .add(human_bytes(static_cast<double>(row.upload_bytes)))
            .add(human_bytes(static_cast<double>(row.download_bytes)))
            .add(row.upload_reduction, 2)
            .add(100.0 * row.acc_mean, 2)
            .add(row.acc_delta_pts, 2)
            .add(row.pareto ? "yes" : "");
        results.push_back(row);
      }
    }

    std::printf("\nUpdate compression — Dirichlet(%.2f) workload (FMNIST "
                "stand-in), %zu clients, %zu rounds, network off (exact "
                "encoded bytes)\n\n",
                sweep.dirichlet_beta, sweep.num_clients, rounds);
    std::printf("%s\n", table.to_string().c_str());

    const std::string out_path = cli.get_string("out");
    bench::write_compress_bench_json(out_path, results);
    std::printf("wrote %zu cells to %s\n", results.size(), out_path.c_str());
    return 0;
  }

  std::vector<std::string> profiles;
  const std::string profile_arg = cli.get_string("profile");
  if (profile_arg == "all") {
    profiles.push_back("none");
    for (net::Profile p : net::all_profiles()) {
      profiles.emplace_back(net::to_string(p));
    }
  } else {
    profiles.push_back(profile_arg);  // validated below (or "none")
  }

  for (const std::string& profile : profiles) {
    const bool simulated = profile != "none";
    bench::Scenario sp = s;
    if (simulated) {
      sp.engine.network.enabled = true;
      sp.engine.network.profile = net::profile_from_string(profile);
      sp.engine.network.straggler_frac = cli.get_double("straggler");
    }

    TextTable table({"Method", "Formation upload", "Formation download",
                     "Total upload", "Total download", "Rounds to target",
                     "Bytes to target", "Time to target", "Sim total (s)",
                     "Final acc (%)"});

    auto algorithms = bench::make_algorithms(/*expected_clusters=*/2);
    for (auto& algo : algorithms) {
      fl::Federation fed = bench::make_federation(sp);
      const fl::RunResult r = algo->run(fed, rounds);

      // "Formation" = round 0 for the one-shot methods; for the iterative
      // ones it is simply their first-round traffic (they never stop
      // paying full price, which is the point of the comparison).
      const auto& up = fed.comm().round_upload();
      const auto& down = fed.comm().round_download();

      std::size_t hit_round = 0;
      std::uint64_t hit_bytes = 0;
      const bool reached = r.rounds_to_accuracy(target, hit_round, hit_bytes);
      double hit_seconds = 0.0;
      const bool timed =
          simulated && r.time_to_accuracy(target, hit_seconds);
      char seconds_buf[32] = "-";
      if (timed) {
        std::snprintf(seconds_buf, sizeof(seconds_buf), "%.1f s",
                      hit_seconds);
      }

      table.new_row()
          .add(algo->name())
          .add(human_bytes(static_cast<double>(up.empty() ? 0 : up[0])))
          .add(human_bytes(static_cast<double>(down.empty() ? 0 : down[0])))
          .add(human_bytes(static_cast<double>(fed.comm().total_upload())))
          .add(human_bytes(static_cast<double>(fed.comm().total_download())))
          .add(reached ? std::to_string(hit_round + 1) : std::string("-"))
          .add(reached ? human_bytes(static_cast<double>(hit_bytes))
                       : std::string("-"))
          .add(seconds_buf)
          .add(simulated ? fed.sim_time() : 0.0, 1)
          .add(100.0 * r.final_accuracy.mean, 2);

      std::fprintf(stderr, "[comm] %-8s / %-13s done (final %.2f%%)\n",
                   algo->name().c_str(), profile.c_str(),
                   100.0 * r.final_accuracy.mean);
    }

    std::printf("\nCommunication cost — grouped 2-cluster workload (FMNIST "
                "stand-in), %zu clients, %zu rounds, target %.0f%%\n",
                sp.num_clients, rounds, 100.0 * target);
    if (simulated) {
      std::printf("network profile: %s (straggler cutoff %.0f%%)\n\n",
                  profile.c_str(), 100.0 * sp.engine.network.straggler_frac);
    } else {
      std::printf("network: disabled (bare float32 byte accounting)\n\n");
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  std::printf(
      "\nexpected shape (paper): FedClust's formation round uploads only "
      "the\nfinal layer (~%.1fx smaller than a full model); IFCA downloads "
      "k models per round; CFL needs many full rounds before clusters "
      "stabilize.\n",
      61706.0 / 850.0);  // LeNet-5 total vs final-layer weights
  return 0;
}
