// Ablation A4 (extension beyond the paper): warm-starting cluster
// classifiers from the round-0 uploads.
//
// During formation the server already holds every member's final-layer
// weights; FedClustConfig::warm_start_classifier seeds each cluster
// model's classifier with the member mean instead of the raw
// initialization — zero extra communication. This harness compares the
// per-round accuracy trajectory of cold vs warm start on the Table-I
// workload.
//
//   ./ablation_warm_start [--rounds 8] [--clients 16]
#include <cstdio>

#include "bench_common.hpp"
#include "utils/cli.hpp"
#include "utils/table.hpp"

using namespace fedclust;

int main(int argc, char** argv) {
  CliParser cli("ablation_warm_start",
                "FedClust cold vs warm-started cluster classifiers");
  cli.add_int("rounds", 8, "communication rounds per run");
  cli.add_int("clients", 16, "number of clients");
  cli.add_int("pool", 800, "total training samples");
  cli.add_double("beta", 0.1, "Dirichlet concentration");
  cli.add_int("seed", 23, "random seed");
  cli.add_flag("quick", "tiny configuration for smoke runs");
  cli.parse(argc, argv);

  const bool quick = cli.get_flag("quick");
  bench::Scenario s;
  s.dataset = data::SyntheticKind::kFmnist;
  s.num_clients =
      quick ? std::size_t{6} : static_cast<std::size_t>(cli.get_int("clients"));
  s.dirichlet_beta = cli.get_double("beta");
  s.pool_samples =
      quick ? std::size_t{300} : static_cast<std::size_t>(cli.get_int("pool"));
  s.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  s.engine.local.epochs = 2;
  s.engine.local.batch_size = 32;
  s.engine.local.sgd.lr = 0.03;
  s.engine.eval_every = 1;

  const auto rounds =
      quick ? std::size_t{3} : static_cast<std::size_t>(cli.get_int("rounds"));

  TextTable table({"Variant", "Round 1 acc (%)", "Round 3 acc (%)",
                   "Final acc (%)", "Clusters"});

  for (const bool warm : {false, true}) {
    fl::Federation fed = bench::make_federation(s);
    core::FedClust algo({.warmup_epochs = 2,
                         .rel_factor = 0.6,
                         .warm_start_classifier = warm});
    const fl::RunResult r = algo.run(fed, rounds);

    auto acc_at = [&](std::size_t round) -> double {
      for (const fl::RoundMetrics& m : r.rounds) {
        if (m.round == round) return 100.0 * m.acc_mean;
      }
      return 0.0;
    };
    table.new_row()
        .add(warm ? "warm-started classifier" : "cold start (paper)")
        .add(acc_at(1), 2)
        .add(acc_at(std::min<std::size_t>(3, rounds - 1)), 2)
        .add(100.0 * r.final_accuracy.mean, 2)
        .add(static_cast<long long>(r.final_round().num_clusters));
    std::fprintf(stderr, "[warm-start] %s done\n", warm ? "warm" : "cold");
  }

  std::printf("\nAblation A4 — warm-starting cluster classifiers from the "
              "round-0 partial uploads (FMNIST stand-in, Dir(%.2f))\n\n%s\n",
              cli.get_double("beta"), table.to_string().c_str());
  std::printf("warm start costs zero extra bytes (the server already holds "
              "the round-0 uploads); expected: earlier-round accuracy "
              "improves, final accuracy converges to the same level.\n");
  return 0;
}
