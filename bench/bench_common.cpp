#include "bench_common.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>

#include "nn/models.hpp"

namespace fedclust::bench {

fl::Federation make_federation(const Scenario& s,
                               std::vector<std::size_t>* true_groups_out) {
  const data::SyntheticGenerator gen(s.dataset, s.seed);
  Rng data_rng = Rng(s.seed).split(101);
  const data::Dataset pool = gen.generate(s.pool_samples, data_rng);

  Rng part_rng = Rng(s.seed).split(102);
  partition::Partition part;
  if (s.dirichlet_beta > 0.0) {
    part = partition::dirichlet_partition(pool, s.num_clients,
                                          s.dirichlet_beta, part_rng,
                                          /*min_samples=*/12);
  } else {
    // Two groups over disjoint label halves — the §II motivation setup.
    part = partition::grouped_label_partition(
        pool, s.num_clients, {{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}}, part_rng,
        s.within_group_beta);
  }
  if (true_groups_out != nullptr) *true_groups_out = part.true_groups;

  Rng split_rng = Rng(s.seed).split(103);
  std::vector<fl::ClientData> clients;
  for (const auto& ds : partition::materialize(pool, part)) {
    auto [train, test] = ds.stratified_split(s.test_fraction, split_rng);
    if (test.empty()) test = train;
    clients.push_back({std::move(train), std::move(test)});
  }

  nn::Model model = s.model == "lenet5"     ? nn::lenet5(gen.image_spec())
                    : s.model == "vgg_mini" ? nn::vgg_mini(gen.image_spec())
                    : s.model == "mlp"      ? nn::mlp(gen.image_spec())
                                            : nn::Model{};
  FEDCLUST_REQUIRE(model.num_layers() > 0,
                   "unknown scenario model '" << s.model
                                              << "' (want lenet5|vgg_mini|mlp)");
  Rng init_rng = Rng(s.seed).split(104);
  model.init_params(init_rng);

  fl::FederationConfig cfg = s.engine;
  cfg.seed = s.seed;
  return fl::Federation(std::move(model), std::move(clients), cfg);
}

std::vector<std::unique_ptr<fl::Algorithm>> make_algorithms(
    std::size_t expected_clusters) {
  std::vector<std::unique_ptr<fl::Algorithm>> algos;
  algos.push_back(std::make_unique<algorithms::FedAvg>());
  algos.push_back(std::make_unique<algorithms::FedProx>(0.05));
  algos.push_back(std::make_unique<algorithms::Cfl>(algorithms::CflConfig{
      .eps1 = 0.8, .eps2 = 1.2, .warmup_rounds = 3, .min_cluster_size = 3}));
  algos.push_back(std::make_unique<algorithms::Ifca>(algorithms::IfcaConfig{
      .num_clusters = expected_clusters, .init_perturbation = 0.1}));
  algos.push_back(std::make_unique<algorithms::Pacfl>(algorithms::PacflConfig{
      .subspace_rank = 3, .samples_per_class_cap = 24}));
  algos.push_back(std::make_unique<core::FedClust>(core::FedClustConfig{
      .warmup_epochs = 2, .rel_factor = 0.6}));
  return algos;
}

void write_kernel_bench_json(const std::string& path,
                             const std::vector<KernelBenchResult>& results) {
  std::ofstream out(path);
  FEDCLUST_REQUIRE(out.good(), "cannot open " << path << " for writing");
  out << std::fixed << std::setprecision(4) << "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const KernelBenchResult& r = results[i];
    out << "  {\"op\": \"" << r.op << "\", \"variant\": \"" << r.variant
        << "\", \"shape\": \"" << r.shape << "\", \"ms\": " << r.ms
        << ", \"gflops\": " << r.gflops << ", \"speedup\": " << r.speedup
        << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

void write_robustness_bench_json(
    const std::string& path,
    const std::vector<RobustnessBenchResult>& results) {
  std::ofstream out(path);
  FEDCLUST_REQUIRE(out.good(), "cannot open " << path << " for writing");
  out << std::fixed << std::setprecision(4) << "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RobustnessBenchResult& r = results[i];
    out << "  {\"algorithm\": \"" << r.algorithm << "\", \"scenario\": \""
        << r.scenario << "\", \"rule\": \"" << r.rule
        << "\", \"acc_mean\": " << r.acc_mean << ", \"acc_std\": " << r.acc_std
        << ", \"clean_retention\": " << r.clean_retention << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

namespace {

/// Reads one "<key>:   <kB> kB" line from /proc/self/status; 0 when the
/// file or key is missing (non-Linux hosts).
double proc_status_mb(const char* key) {
  std::ifstream status("/proc/self/status");
  if (!status.good()) return 0.0;
  std::string line;
  const std::string prefix = std::string(key) + ":";
  while (std::getline(status, line)) {
    if (line.rfind(prefix, 0) == 0) {
      const double kb = std::strtod(line.c_str() + prefix.size(), nullptr);
      return kb / 1024.0;
    }
  }
  return 0.0;
}

}  // namespace

double current_rss_mb() { return proc_status_mb("VmRSS"); }

double peak_rss_mb() { return proc_status_mb("VmHWM"); }

void require_max_rss(double limit_mb) {
  if (limit_mb <= 0.0) return;
  const double peak = peak_rss_mb();
  if (peak <= 0.0) return;  // no /proc on this host — check unavailable
  FEDCLUST_REQUIRE(peak <= limit_mb, "peak RSS " << peak << " MiB exceeds --max-rss-mb "
                                                << limit_mb << " MiB");
}

void write_fleet_bench_json(const std::string& path,
                            const std::vector<FleetBenchResult>& results) {
  std::ofstream out(path);
  FEDCLUST_REQUIRE(out.good(), "cannot open " << path << " for writing");
  out << std::fixed << std::setprecision(4) << "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const FleetBenchResult& r = results[i];
    out << "  {\"clients\": " << r.clients << ", \"cohort\": " << r.cohort
        << ", \"rounds\": " << r.rounds << ", \"edges\": " << r.edges
        << ", \"round_ms_mean\": " << r.round_ms_mean
        << ", \"round_ms_p50\": " << r.round_ms_p50
        << ", \"round_ms_p99\": " << r.round_ms_p99
        << ", \"round_ms_p999\": " << r.round_ms_p999
        << ", \"acc_mean_last\": " << r.acc_mean_last
        << ", \"vm_rss_mb\": " << r.vm_rss_mb
        << ", \"vm_hwm_mb\": " << r.vm_hwm_mb
        << ", \"rss_limit_mb\": " << r.rss_limit_mb
        << ", \"upload_bytes\": " << r.upload_bytes
        << ", \"download_bytes\": " << r.download_bytes
        << ", \"server_link_floats\": " << r.server_link_floats
        << ", \"flat_link_floats\": " << r.flat_link_floats
        << ", \"weights_fp_chain\": " << r.weights_fp_chain
        << ", \"resident_shards\": " << r.resident_shards << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

void write_compress_bench_json(
    const std::string& path, const std::vector<CompressBenchResult>& results) {
  std::ofstream out(path);
  FEDCLUST_REQUIRE(out.good(), "cannot open " << path << " for writing");
  out << std::fixed << std::setprecision(4) << "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CompressBenchResult& r = results[i];
    out << "  {\"algorithm\": \"" << r.algorithm << "\", \"codec\": \""
        << r.codec << "\", \"rounds\": " << r.rounds
        << ", \"upload_bytes\": " << r.upload_bytes
        << ", \"download_bytes\": " << r.download_bytes
        << ", \"upload_reduction\": " << r.upload_reduction
        << ", \"acc_mean\": " << r.acc_mean << ", \"acc_std\": " << r.acc_std
        << ", \"acc_delta_pts\": " << r.acc_delta_pts
        << ", \"pareto\": " << (r.pareto ? "true" : "false") << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

void write_async_bench_json(const std::string& path,
                            const std::vector<AsyncBenchResult>& results) {
  std::ofstream out(path);
  FEDCLUST_REQUIRE(out.good(), "cannot open " << path << " for writing");
  out << std::fixed << std::setprecision(4) << "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const AsyncBenchResult& r = results[i];
    out << "  {\"algorithm\": \"" << r.algorithm << "\", \"mode\": \""
        << r.mode << "\", \"profile\": \"" << r.profile
        << "\", \"buffer_k\": " << r.buffer_k << ", \"rounds\": " << r.rounds
        << ", \"target_acc\": " << r.target_acc
        << ", \"reached\": " << (r.reached ? "true" : "false")
        << ", \"seconds_to_target\": " << r.seconds_to_target
        << ", \"seconds_total\": " << r.seconds_total
        << ", \"final_acc\": " << r.final_acc
        << ", \"upload_mb\": " << r.upload_mb
        << ", \"download_mb\": " << r.download_mb
        << ", \"speedup_vs_sync\": " << r.speedup_vs_sync << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

void write_serving_bench_json(const std::string& path,
                              const std::vector<ServingBenchResult>& results) {
  std::ofstream out(path);
  FEDCLUST_REQUIRE(out.good(), "cannot open " << path << " for writing");
  out << std::fixed << std::setprecision(4) << "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ServingBenchResult& r = results[i];
    out << "  {\"model\": \"" << r.model << "\", \"mode\": \"" << r.mode
        << "\", \"max_batch\": " << r.max_batch
        << ", \"workers\": " << r.workers << ", \"requests\": " << r.requests
        << ", \"clusters\": " << r.clusters << ", \"rps\": " << r.rps
        << ", \"p50_ms\": " << r.p50_ms << ", \"p99_ms\": " << r.p99_ms
        << ", \"p999_ms\": " << r.p999_ms
        << ", \"mean_batch_rows\": " << r.mean_batch_rows
        << ", \"accuracy\": " << r.accuracy << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

void write_drift_bench_json(const std::string& path,
                            const std::vector<DriftBenchResult>& results) {
  std::ofstream out(path);
  FEDCLUST_REQUIRE(out.good(), "cannot open " << path << " for writing");
  out << std::fixed << std::setprecision(4) << "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const DriftBenchResult& r = results[i];
    out << "  {\"mode\": \"" << r.mode << "\", \"rounds\": " << r.rounds
        << ", \"drift_round\": " << r.drift_round
        << ", \"pre_drift_acc\": " << r.pre_drift_acc
        << ", \"trough_acc\": " << r.trough_acc
        << ", \"final_acc\": " << r.final_acc
        << ", \"detect_round\": " << r.detect_round
        << ", \"recover_round\": " << r.recover_round
        << ", \"recover_margin\": " << r.recover_margin
        << ", \"reclusters\": " << r.reclusters
        << ", \"final_clusters\": " << r.final_clusters
        << ", \"weights_fp_chain\": " << r.weights_fp_chain
        << ", \"acc_series\": [";
    for (std::size_t j = 0; j < r.acc_series.size(); ++j) {
      out << (j ? ", " : "") << r.acc_series[j];
    }
    out << "]}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

MeanStd mean_std(const std::vector<double>& values) {
  MeanStd out;
  if (values.empty()) return out;
  for (double v : values) out.mean += v;
  out.mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - out.mean) * (v - out.mean);
  out.std = std::sqrt(var / static_cast<double>(values.size()));
  return out;
}

}  // namespace fedclust::bench
