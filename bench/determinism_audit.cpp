// Determinism audit harness: runs the full algorithm zoo on a small
// Dir(0.1) federation at several kernel-thread counts and asserts the
// trajectories are bit-identical (src/check/determinism.hpp). Exits
// nonzero on any divergence, so CI can gate on it.
//
//   ./determinism_audit [--rounds 3] [--clients 8] [--pool 480]
//                       [--max-threads N] [--faults]
//
// --faults layers the robustness machinery on top: client crashes,
// stale replays, NaN-poisoned and sign-flipped uploads, with arrival
// screening + quarantine enabled. Fault draws and strike accounting are
// keyed functionally by (seed, round, client, attempt), so the faulted
// trajectories must stay bit-identical across kernel-thread counts too.
#include <cstdio>
#include <thread>

#include "bench_common.hpp"
#include "check/determinism.hpp"
#include "utils/cli.hpp"
#include "utils/table.hpp"

int main(int argc, char** argv) {
  using namespace fedclust;

  CliParser cli("determinism_audit",
                "Asserts bit-identical trajectories across kernel-thread "
                "counts for every algorithm");
  cli.add_int("rounds", 3, "communication rounds per run");
  cli.add_int("clients", 8, "number of clients");
  cli.add_int("pool", 480, "total training samples");
  cli.add_int("max-threads", 0,
              "largest kernel-thread count to test (0 = hardware)");
  cli.add_flag("faults",
               "inject crashes/stale replays/corrupted uploads with "
               "validation + quarantine enabled");
  cli.parse(argc, argv);

  const auto rounds = static_cast<std::size_t>(cli.get_int("rounds"));
  std::size_t max_threads =
      static_cast<std::size_t>(cli.get_int("max-threads"));
  if (max_threads == 0) {
    max_threads = std::max(2u, std::thread::hardware_concurrency());
  }
  // 0 = pool disabled entirely, 1 = single pooled worker, max = real
  // row-block splitting.
  const std::vector<std::size_t> counts = {0, 1, max_threads};

  bench::Scenario base;
  base.num_clients = static_cast<std::size_t>(cli.get_int("clients"));
  base.pool_samples = static_cast<std::size_t>(cli.get_int("pool"));
  base.engine.local.epochs = 2;
  base.engine.threads = 2;
  const bool faults = cli.get_flag("faults");
  if (faults) {
    base.engine.faults.enabled = true;
    base.engine.faults.crash_prob = 0.1;
    base.engine.faults.stale_prob = 0.1;
    base.engine.faults.nan_prob = 0.1;
    base.engine.faults.sign_flip_prob = 0.1;
    base.engine.robust.validate.enabled = true;
  }

  const auto make_fed = [&](std::size_t kernel_threads) {
    bench::Scenario s = base;
    s.engine.kernel_threads = kernel_threads;
    return bench::make_federation(s);
  };

  TextTable table({"Algorithm", "Rounds", "Identical", "First mismatch"});
  bool all_identical = true;
  const std::size_t zoo_size = bench::make_algorithms(2).size();
  for (std::size_t i = 0; i < zoo_size; ++i) {
    const auto make_alg = [i] {
      return std::move(bench::make_algorithms(2)[i]);
    };
    const check::DeterminismReport report =
        check::determinism_audit(make_alg, make_fed, rounds, counts);
    all_identical = all_identical && report.identical;
    table.new_row()
        .add(make_alg()->name())
        .add(static_cast<long long>(report.rounds_compared))
        .add(report.identical ? "yes" : "NO")
        .add(report.mismatches.empty() ? "-" : report.mismatches.front());
  }

  std::printf("kernel_threads tested: 0, 1, %zu (faults %s)\n\n%s\n",
              max_threads, faults ? "ON" : "off", table.to_string().c_str());
  if (!all_identical) {
    std::fprintf(stderr, "determinism audit FAILED\n");
    return 1;
  }
  std::printf("determinism audit passed\n");
  return 0;
}
