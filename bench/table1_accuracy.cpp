// Reproduces Table I of the FedClust paper: final test accuracy
// (mean ± std over seeds) of FedAvg / FedProx / CFL / IFCA / PACFL /
// FedClust on the CIFAR-10 / FMNIST / SVHN stand-ins under Non-IID
// Dir(0.1).
//
// Absolute numbers are not comparable to the paper (synthetic data,
// LeNet-scale budget); the comparison points are the METHOD ORDERING and
// the relative gaps — see EXPERIMENTS.md.
//
//   ./table1_accuracy [--rounds 15] [--seeds 3] [--clients 20]
//                     [--pool 1200] [--beta 0.1] [--quick] [--csv out.csv]
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "utils/cli.hpp"
#include "utils/stopwatch.hpp"
#include "utils/table.hpp"

namespace {

using namespace fedclust;

struct PaperRow {
  const char* method;
  const char* cifar10;
  const char* fmnist;
  const char* svhn;
};

// The paper's Table I, for side-by-side reference in the output.
constexpr PaperRow kPaperTable[] = {
    {"FedAvg", "38.25 ± 2.98", "81.93 ± 0.64", "61.26 ± 0.95"},
    {"FedProx", "51.60 ± 1.40", "74.53 ± 2.16", "79.64 ± 0.80"},
    {"CFL", "41.50 ± 0.35", "74.01 ± 1.19", "61.96 ± 1.58"},
    {"IFCA", "50.51 ± 0.61", "84.57 ± 0.41", "74.57 ± 0.40"},
    {"PACFL", "51.02 ± 0.24", "85.30 ± 0.28", "76.35 ± 0.46"},
    {"FedClust", "60.25 ± 0.58", "95.51 ± 0.17", "78.23 ± 0.30"},
};

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("table1_accuracy",
                "Reproduces Table I: accuracy under Non-IID Dir(0.1)");
  cli.add_int("rounds", 12, "communication rounds per run");
  cli.add_int("seeds", 2, "number of seeds (reported as mean ± std)");
  cli.add_int("clients", 20, "number of clients");
  cli.add_int("pool", 1000, "total training samples per dataset");
  cli.add_double("beta", 0.1, "Dirichlet concentration (non-IID level)");
  cli.add_int("epochs", 5,
              "local epochs per round (high values induce the client "
              "drift that breaks FedAvg under label skew)");
  cli.add_double("participation", 0.5, "client fraction sampled per round");
  cli.add_string("datasets", "all",
                 "comma-free filter: all|cifar10|fmnist|svhn");
  cli.add_flag("quick", "tiny configuration for smoke runs");
  cli.add_string("csv", "", "also write results to this CSV file");
  cli.parse(argc, argv);

  const bool quick = cli.get_flag("quick");
  const auto rounds =
      quick ? std::size_t{6} : static_cast<std::size_t>(cli.get_int("rounds"));
  const auto seeds =
      quick ? std::size_t{1} : static_cast<std::size_t>(cli.get_int("seeds"));
  const auto clients =
      quick ? std::size_t{10} : static_cast<std::size_t>(cli.get_int("clients"));
  const auto pool =
      quick ? std::size_t{400} : static_cast<std::size_t>(cli.get_int("pool"));

  std::vector<data::SyntheticKind> kinds;
  if (cli.get_string("datasets") == "all") {
    kinds = {data::SyntheticKind::kCifar10, data::SyntheticKind::kFmnist,
             data::SyntheticKind::kSvhn};
  } else {
    kinds = {data::synthetic_kind_from_string(cli.get_string("datasets"))};
  }

  // results[method][dataset] -> accuracy per seed (percent).
  std::map<std::string, std::map<std::string, std::vector<double>>> results;
  std::vector<std::string> method_order;

  Stopwatch total;
  for (const auto kind : kinds) {
    for (std::size_t seed = 0; seed < seeds; ++seed) {
      bench::Scenario s;
      s.dataset = kind;
      s.num_clients = clients;
      s.dirichlet_beta = cli.get_double("beta");
      s.pool_samples = pool;
      s.seed = 1000 + seed;
      // The drift regime of the Table-I literature (Li et al. ICDE'22):
      // many local epochs, plain SGD, partial participation.
      s.engine.local.epochs =
          quick ? 2 : static_cast<std::size_t>(cli.get_int("epochs"));
      s.engine.local.batch_size = 32;
      s.engine.local.sgd.lr = 0.03;
      s.engine.participation = cli.get_double("participation");
      s.engine.eval_every = rounds;  // final evaluation only

      auto algorithms = bench::make_algorithms(/*expected_clusters=*/4);
      for (auto& algo : algorithms) {
        fl::Federation fed = bench::make_federation(s);
        Stopwatch sw;
        const fl::RunResult r = algo->run(fed, rounds);
        results[algo->name()][data::to_string(kind)].push_back(
            100.0 * r.final_accuracy.mean);
        if (seed == 0 && kind == kinds[0]) method_order.push_back(algo->name());
        std::fprintf(stderr,
                     "[table1] %-8s %-8s seed=%zu acc=%5.2f%% (%.1fs)\n",
                     algo->name().c_str(), data::to_string(kind).c_str(), seed,
                     100.0 * r.final_accuracy.mean, sw.seconds());
      }
    }
  }

  TextTable table({"Method", "CIFAR-10 (ours)", "CIFAR-10 (paper)",
                   "FMNIST (ours)", "FMNIST (paper)", "SVHN (ours)",
                   "SVHN (paper)"});
  for (std::size_t m = 0; m < method_order.size(); ++m) {
    const std::string& method = method_order[m];
    const PaperRow& paper = kPaperTable[m];
    const auto c = bench::mean_std(results[method]["cifar10"]);
    const auto f = bench::mean_std(results[method]["fmnist"]);
    const auto v = bench::mean_std(results[method]["svhn"]);
    table.new_row()
        .add(method)
        .add(format_mean_std(c.mean, c.std))
        .add(paper.cifar10)
        .add(format_mean_std(f.mean, f.std))
        .add(paper.fmnist)
        .add(format_mean_std(v.mean, v.std))
        .add(paper.svhn);
  }

  std::printf(
      "\nTable I — test accuracy (%%), Non-IID Dir(%.2f), %zu clients, "
      "%zu rounds, %zu seed(s)\n\n",
      cli.get_double("beta"), clients, rounds, seeds);
  std::printf("%s\n", table.to_string().c_str());
  std::printf("total wall time: %.1f s\n", total.seconds());

  if (!cli.get_string("csv").empty()) {
    table.write_csv(cli.get_string("csv"));
    std::printf("csv written to %s\n", cli.get_string("csv").c_str());
  }
  return 0;
}
