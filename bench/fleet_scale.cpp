// Million-client fleet scaling: lazy client virtualization + model-clone
// pooling + two-level edge aggregation, swept across fleet sizes.
//
// Each stage builds a VirtualFleet of N Dirichlet-skewed clients (resident
// state: per-client label histograms, never pixels), samples 1% per round,
// trains the cohort through Federation::train_clients_folded (edge tree,
// bit-identical to flat FedAvg), and records peak/current RSS, round
// wall-clock, cohort accuracy, and comm bytes into BENCH_fleet.json. The
// headline claim: one million clients at 1% participation in bounded,
// sub-linear-in-fleet memory.
//
//   ./fleet_scale                      # sweep 1k -> 1M clients
//   ./fleet_scale --clients 100000 --rounds 2 --max-rss-mb 1500
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "check/audit.hpp"
#include "fl/federation.hpp"
#include "fl/streaming.hpp"
#include "fl/virtual_fleet.hpp"
#include "net/topology.hpp"
#include "nn/models.hpp"
#include "utils/cli.hpp"
#include "utils/histogram.hpp"
#include "utils/table.hpp"

using namespace fedclust;

namespace {

data::SyntheticKind parse_dataset(const std::string& name) {
  if (name == "cifar10") return data::SyntheticKind::kCifar10;
  if (name == "fmnist") return data::SyntheticKind::kFmnist;
  if (name == "svhn") return data::SyntheticKind::kSvhn;
  FEDCLUST_REQUIRE(false, "unknown dataset '" << name
                                              << "' (cifar10|fmnist|svhn)");
}

bench::FleetBenchResult run_stage(std::size_t fleet_size, std::size_t rounds,
                                  double participation, std::size_t edges,
                                  std::size_t samples_per_client,
                                  std::size_t hidden, std::size_t eval_clients,
                                  std::size_t threads, double max_rss_mb,
                                  std::uint64_t seed,
                                  data::SyntheticKind dataset) {
  fl::VirtualFleetSpec spec;
  spec.dataset = dataset;
  spec.num_clients = fleet_size;
  spec.samples_per_client = samples_per_client;
  spec.seed = seed;
  auto source = std::make_shared<fl::VirtualFleet>(spec);

  nn::Model model = nn::mlp(source->image_spec(), hidden);
  Rng init_rng = Rng(seed).split(104);
  model.init_params(init_rng);

  fl::FederationConfig cfg;
  cfg.participation = participation;
  cfg.threads = threads;
  cfg.seed = seed;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 16;
  fl::Federation fed(std::move(model), source, cfg);

  const net::EdgeTopology topo{edges};
  std::vector<float> global = fed.template_model().flat_weights();
  fl::StreamingRunStats stats;
  utils::StreamingHistogram round_hist;  // wall-clock tail, not just mean
  std::uint64_t server_link = 0;
  std::uint64_t flat_link = 0;
  std::size_t last_cohort = 0;

  for (std::size_t r = 0; r < rounds; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<std::size_t> cohort = fed.sample_clients(r);
    last_cohort = cohort.size();
    fed.comm().begin_round(r, cohort);
    for (const std::size_t c : cohort) {
      fed.meter_download(c, fed.model_size());
    }
    const auto weights_for = [&](std::size_t) {
      return std::span<const float>(global);
    };
    fl::Federation::FoldResult fr =
        fed.train_clients_folded(cohort, r, weights_for, topo);
    for (const std::size_t c : fr.contributors) {
      fed.meter_upload(c, fed.model_size());
    }
    if (!fr.weights.empty()) global = std::move(fr.weights);
    server_link += topo.server_link_floats(fr.contributors.size(),
                                           fed.model_size());
    flat_link += fr.contributors.size() * fed.model_size();

    // Streamed cohort evaluation on a bounded slice — never the fleet.
    std::vector<std::size_t> eval_ids(
        cohort.begin(),
        cohort.begin() +
            std::min<std::size_t>(eval_clients, cohort.size()));
    const fl::AccuracySummary acc = fed.evaluate_cohort(eval_ids, weights_for);
    const auto t1 = std::chrono::steady_clock::now();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    stats.record(acc.mean, fr.mean_train_loss, wall_ms,
                 check::weights_fingerprint(global));
    round_hist.record(wall_ms);
    bench::require_max_rss(max_rss_mb);
    std::printf("  round %zu: cohort %zu, acc %.4f, loss %.4f, %.0f ms, "
                "rss %.0f MiB\n",
                r, cohort.size(), acc.mean, fr.mean_train_loss, wall_ms,
                bench::current_rss_mb());
  }

  bench::FleetBenchResult out;
  out.clients = fleet_size;
  out.cohort = last_cohort;
  out.rounds = rounds;
  out.edges = edges;
  out.round_ms_mean = stats.round_wall_ms.mean();
  out.round_ms_p50 = round_hist.p50();
  out.round_ms_p99 = round_hist.p99();
  out.round_ms_p999 = round_hist.p999();
  out.acc_mean_last = stats.acc_mean.count() > 0
                          ? stats.acc_mean.mean()
                          : 0.0;
  out.vm_rss_mb = bench::current_rss_mb();
  out.vm_hwm_mb = bench::peak_rss_mb();
  out.rss_limit_mb = max_rss_mb;
  out.upload_bytes = fed.comm().total_upload();
  out.download_bytes = fed.comm().total_download();
  out.server_link_floats = server_link;
  out.flat_link_floats = flat_link;
  out.weights_fp_chain = stats.weights_fp_chain;
  out.resident_shards = fed.source().resident();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("fleet_scale",
                "Fleet scaling: virtualized clients, pooled clones, edge "
                "aggregation (1k -> 1M sweep)");
  cli.add_int("clients", 0, "fleet size; 0 sweeps 1k, 10k, 100k, 1M");
  cli.add_int("rounds", 3, "federated rounds per stage");
  cli.add_double("participation", 0.01, "cohort fraction sampled per round");
  cli.add_int("edges", 8, "edge aggregators in the two-level tree");
  cli.add_int("samples-per-client", 24, "mean samples dealt per client");
  cli.add_int("hidden", 32, "MLP hidden width");
  cli.add_int("eval-clients", 64, "cohort clients evaluated per round");
  cli.add_int("threads", 0, "training threads (0 = hardware)");
  cli.add_double("max-rss-mb", 0.0,
                 "abort if peak RSS exceeds this many MiB (0 = off)");
  cli.add_int("seed", 1, "random seed");
  cli.add_string("dataset", "fmnist", "cifar10 | fmnist | svhn");
  cli.add_string("out", "BENCH_fleet.json", "output JSON path");
  cli.parse(argc, argv);

  std::vector<std::size_t> fleets;
  if (cli.get_int("clients") > 0) {
    fleets.push_back(static_cast<std::size_t>(cli.get_int("clients")));
  } else {
    fleets = {1000, 10000, 100000, 1000000};
  }

  std::vector<bench::FleetBenchResult> results;
  for (const std::size_t n : fleets) {
    std::printf("fleet %zu clients (%.1f%% participation)\n", n,
                100.0 * cli.get_double("participation"));
    results.push_back(run_stage(
        n, static_cast<std::size_t>(cli.get_int("rounds")),
        cli.get_double("participation"),
        static_cast<std::size_t>(cli.get_int("edges")),
        static_cast<std::size_t>(cli.get_int("samples-per-client")),
        static_cast<std::size_t>(cli.get_int("hidden")),
        static_cast<std::size_t>(cli.get_int("eval-clients")),
        static_cast<std::size_t>(cli.get_int("threads")),
        cli.get_double("max-rss-mb"),
        static_cast<std::uint64_t>(cli.get_int("seed")),
        parse_dataset(cli.get_string("dataset"))));
  }

  TextTable table({"clients", "cohort", "round ms", "p99 ms", "acc",
                   "rss MiB", "hwm MiB", "link floats/rd (tree vs flat)"});
  for (const bench::FleetBenchResult& r : results) {
    const double per_round =
        r.rounds > 0 ? static_cast<double>(r.rounds) : 1.0;
    char link[64];
    std::snprintf(link, sizeof(link), "%.2e vs %.2e",
                  static_cast<double>(r.server_link_floats) / per_round,
                  static_cast<double>(r.flat_link_floats) / per_round);
    table.new_row()
        .add(static_cast<long long>(r.clients))
        .add(static_cast<long long>(r.cohort))
        .add(r.round_ms_mean, 1)
        .add(r.round_ms_p99, 1)
        .add(r.acc_mean_last, 4)
        .add(r.vm_rss_mb, 0)
        .add(r.vm_hwm_mb, 0)
        .add(std::string(link));
  }
  std::printf("%s", table.to_string().c_str());

  bench::write_fleet_bench_json(cli.get_string("out"), results);
  std::printf("wrote %s\n", cli.get_string("out").c_str());
  return 0;
}
