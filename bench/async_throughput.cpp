// Async vs sync time-to-accuracy under stragglers (the tentpole bench).
//
// Sweeps {sync, async K ∈ {4, 16, 64}} × {lan, cellular, heterogeneous}
// × {FedAvg, FedClust} on a two-group FMNIST-emulation fleet. Sync
// rounds on the straggler profiles close after the fastest 50% of
// uploads (the straggler_demo setting); the async engine has no round
// barrier at all — per-cluster buffers flush as soon as K updates
// arrive, so fast clients keep contributing while stragglers grind.
// The axis is net::Simulator virtual time: seconds until the mean
// per-client accuracy first reaches the target.
//
// Emits BENCH_async.json; the headline (quoted in EXPERIMENTS.md E9) is
// async FedClust's speedup over sync FedClust on cellular/50%.
//
//   ./build/bench/async_throughput [--quick] [--out BENCH_async.json]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "algorithms/async_adapters.hpp"
#include "bench_common.hpp"
#include "core/fedclust_async.hpp"
#include "fl/async.hpp"
#include "nn/models.hpp"

using namespace fedclust;

namespace {

struct Options {
  bool quick = false;
  std::string out = "BENCH_async.json";
};

constexpr std::size_t kClients = 12;
constexpr double kTarget = 0.55;
constexpr std::size_t kSyncRounds = 40;

fl::Federation build_federation(net::Profile profile, std::uint64_t seed) {
  const data::SyntheticGenerator generator(data::SyntheticKind::kFmnist,
                                           seed);
  Rng data_rng = Rng(seed).split(1);
  const data::Dataset pool = generator.generate(720, data_rng);

  Rng part_rng = Rng(seed).split(2);
  // Skewed within-group shards (Dir 1.0): stragglers hold label mass the
  // fast clients lack, so a cutoff that perpetually drops them starves
  // part of the distribution — the regime async aggregation targets.
  const partition::Partition part = partition::grouped_label_partition(
      pool, kClients, {{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}}, part_rng,
      /*within_group_beta=*/1.0);

  Rng split_rng = Rng(seed).split(3);
  std::vector<fl::ClientData> clients;
  for (const auto& ds : partition::materialize(pool, part)) {
    auto [train, test] = ds.stratified_split(0.25, split_rng);
    if (test.empty()) test = train;
    clients.push_back({std::move(train), std::move(test)});
  }

  nn::Model model = nn::mlp(generator.image_spec(), 48);
  Rng init_rng = Rng(seed).split(4);
  model.init_params(init_rng);

  fl::FederationConfig config;
  config.local.epochs = 1;
  config.local.batch_size = 32;
  config.local.sgd.lr = 0.05;
  config.local.sgd.momentum = 0.9;
  config.seed = seed;
  config.eval_every = 1;
  config.network.enabled = true;
  config.network.profile = profile;
  // The straggler scenario: rounds on the slow profiles wait only for
  // the fastest half of the expected uploads. LAN keeps the full
  // barrier (no tail to cut).
  config.network.straggler_frac = profile == net::Profile::kLan ? 1.0 : 0.5;
  return fl::Federation(std::move(model), std::move(clients), config);
}

bench::AsyncBenchResult summarize(const std::string& algorithm,
                                  const std::string& mode,
                                  const std::string& profile,
                                  std::size_t buffer_k, std::size_t rounds,
                                  const fl::RunResult& result,
                                  const fl::Federation& fed) {
  bench::AsyncBenchResult r;
  r.algorithm = algorithm;
  r.mode = mode;
  r.profile = profile;
  r.buffer_k = buffer_k;
  r.rounds = rounds;
  r.target_acc = kTarget;
  r.reached = result.time_to_accuracy(kTarget, r.seconds_to_target);
  r.seconds_total = fed.sim_time();
  r.final_acc = result.final_accuracy.mean;
  r.upload_mb = static_cast<double>(fed.comm().total_upload()) / 1e6;
  r.download_mb = static_cast<double>(fed.comm().total_download()) / 1e6;
  return r;
}

fl::RunResult run_sync(const std::string& algorithm, fl::Federation& fed,
                       std::size_t rounds) {
  if (algorithm == "FedClust") {
    core::FedClust algo(core::FedClustConfig{.warmup_epochs = 1});
    return algo.run(fed, rounds);
  }
  algorithms::FedAvg algo;
  return algo.run(fed, rounds);
}

fl::RunResult run_buffered(const std::string& algorithm, fl::Federation& fed,
                           std::size_t buffer_k, std::size_t flushes) {
  fl::AsyncConfig ac;
  ac.buffer_k = buffer_k;
  ac.staleness_fn = fl::StalenessKind::kPolynomial;
  ac.staleness_exponent = 0.5;
  if (algorithm == "FedClust") {
    core::FedClustAsync adapter(core::FedClustConfig{.warmup_epochs = 1});
    return fl::run_async(fed, adapter, ac, flushes);
  }
  algorithms::GlobalAverageAdapter adapter;
  return fl::run_async(fed, adapter, ac, flushes);
}

/// Flush budget matching the sync runs' update budget (rounds × fleet),
/// padded 1.5× so a mode is never cut off just short of the target.
std::size_t flush_budget(std::size_t buffer_k, std::size_t sync_rounds) {
  const std::size_t per_flush = std::min(buffer_k, kClients);
  const std::size_t updates = sync_rounds * kClients;
  return (3 * updates) / (2 * per_flush) + 1;
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      opt.quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      opt.out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: async_throughput [--quick] [--out FILE]\n");
      std::exit(2);
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  const std::uint64_t seed = 17;

  const std::vector<net::Profile> profiles =
      opt.quick ? std::vector<net::Profile>{net::Profile::kCellular}
                : std::vector<net::Profile>{net::Profile::kLan,
                                            net::Profile::kCellular,
                                            net::Profile::kHeterogeneous};
  const std::vector<std::size_t> buffer_ks =
      opt.quick ? std::vector<std::size_t>{4}
                : std::vector<std::size_t>{4, 16, 64};
  const std::size_t sync_rounds = opt.quick ? 4 : kSyncRounds;

  std::printf("async_throughput: %zu clients, target %.0f%% mean accuracy\n\n",
              kClients, 100.0 * kTarget);
  std::printf("%-9s %-9s %-14s %7s %9s %13s %11s %9s\n", "algo", "mode",
              "profile", "rounds", "final%", "s to tgt", "speedup",
              "up MB");

  std::vector<bench::AsyncBenchResult> results;
  double headline = 0.0;
  for (const std::string algorithm : {"FedAvg", "FedClust"}) {
    for (const net::Profile profile : profiles) {
      const std::string pname = net::to_string(profile);

      fl::Federation sync_fed = build_federation(profile, seed);
      const fl::RunResult sync_res =
          run_sync(algorithm, sync_fed, sync_rounds);
      bench::AsyncBenchResult sync_row =
          summarize(algorithm, "sync", pname, 0, sync_rounds, sync_res,
                    sync_fed);
      sync_row.speedup_vs_sync = 1.0;
      results.push_back(sync_row);

      for (const std::size_t k : buffer_ks) {
        const std::size_t flushes = flush_budget(k, sync_rounds);
        fl::Federation fed = build_federation(profile, seed);
        const fl::RunResult res = run_buffered(algorithm, fed, k, flushes);
        bench::AsyncBenchResult row =
            summarize(algorithm, "async_k" + std::to_string(k), pname, k,
                      flushes, res, fed);
        if (sync_row.reached && row.reached && row.seconds_to_target > 0.0) {
          row.speedup_vs_sync =
              sync_row.seconds_to_target / row.seconds_to_target;
        }
        if (algorithm == "FedClust" && profile == net::Profile::kCellular) {
          headline = std::max(headline, row.speedup_vs_sync);
        }
        results.push_back(row);
      }
    }
  }

  for (const bench::AsyncBenchResult& r : results) {
    char secs[32] = "-";
    char speed[32] = "-";
    if (r.reached) {
      std::snprintf(secs, sizeof(secs), "%.1f", r.seconds_to_target);
    }
    if (r.speedup_vs_sync > 0.0) {
      std::snprintf(speed, sizeof(speed), "%.2fx", r.speedup_vs_sync);
    }
    std::printf("%-9s %-9s %-14s %7zu %8.1f%% %13s %11s %9.1f\n",
                r.algorithm.c_str(), r.mode.c_str(), r.profile.c_str(),
                r.rounds, 100.0 * r.final_acc, secs, speed, r.upload_mb);
  }

  bench::write_async_bench_json(opt.out, results);
  std::printf("\nwrote %s\n", opt.out.c_str());
  if (!opt.quick) {
    std::printf("headline: async FedClust vs sync FedClust on cellular/50%% "
                "stragglers: %.2fx faster to %.0f%% accuracy\n",
                headline, 100.0 * kTarget);
    if (headline < 2.0) {
      std::printf("WARNING: headline below the 2x acceptance threshold\n");
      return 1;
    }
  }
  return 0;
}
