// Self-timed micro-benchmarks for the hot tensor kernels: blocked vs
// naive GEMM, direct vs im2col/GEMM convolution at the LeNet-5 and
// VGG-mini layer shapes, the fused FedAvg aggregation kernel, and the
// pairwise proximity-matrix build. Where the build carries a SIMD kernel
// table, each op gains a "simd" variant row timed against the scalar
// table inside the same binary (ops::set_simd_enabled). Prints a summary
// table and writes a machine-readable BENCH_kernels.json (record format
// in bench_common.hpp) so later changes can be compared against these
// numbers. Usage: micro_kernels [output.json]
#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cluster/distance.hpp"
#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"
#include "utils/rng.hpp"
#include "utils/stopwatch.hpp"

namespace {

using namespace fedclust;
using bench::KernelBenchResult;

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  return Tensor::randn(std::move(shape), rng);
}

/// Best-of-reps wall time per call, in ms. Each rep times `iters`
/// back-to-back calls, with iters sized so one rep lasts ~20 ms — small
/// kernels are amortized over many calls, big ones timed individually.
double time_ms(const std::function<void()>& fn) {
  fn();  // warm caches and let scratch reach steady-state capacity
  Stopwatch probe;
  fn();
  const double once = std::max(probe.milliseconds(), 1e-3);
  const int iters = std::clamp(static_cast<int>(20.0 / once), 1, 200);
  double best = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    Stopwatch sw;
    for (int i = 0; i < iters; ++i) fn();
    best = std::min(best, sw.milliseconds() / iters);
  }
  return best;
}

KernelBenchResult make_result(std::string op, std::string variant,
                              std::string shape, double ms, double flops,
                              double baseline_ms) {
  KernelBenchResult r;
  r.op = std::move(op);
  r.variant = std::move(variant);
  r.shape = std::move(shape);
  r.ms = ms;
  r.gflops = flops > 0.0 ? flops / (ms * 1e6) : 0.0;
  r.speedup = baseline_ms > 0.0 ? baseline_ms / ms : 1.0;
  return r;
}

/// True when this binary carries a SIMD kernel table the host can run.
bool simd_available() {
  ops::set_simd_enabled(true);
  return ops::simd_active();
}

void bench_matmul(std::vector<KernelBenchResult>& out) {
  struct Case {
    std::size_t m, k, n;
    const char* tag;
  };
  const Case cases[] = {
      {128, 128, 128, "128x128x128"},
      {256, 256, 256, "256x256x256"},
      {384, 384, 384, "384x384x384"},
      // VGG-mini conv3 lowered to GEMM: (N*Ho*Wo) x (Cin*K*K) x Cout.
      {2048, 144, 32, "2048x144x32"},
  };
  for (const Case& c : cases) {
    const Tensor a = random_tensor({c.m, c.k}, 1);
    const Tensor b = random_tensor({c.k, c.n}, 2);
    Tensor cn, cb;
    const double flops = 2.0 * static_cast<double>(c.m * c.k) *
                         static_cast<double>(c.n);
    // "naive" and "blocked" pin the scalar table so the rows stay
    // comparable with pre-SIMD baselines; "simd" is the dispatched table.
    ops::set_simd_enabled(false);
    const double naive = time_ms([&] { ops::matmul_naive(a, b, cn); });
    const double blocked = time_ms([&] { ops::matmul(a, b, cb); });
    out.push_back(make_result("matmul", "naive", c.tag, naive, flops, naive));
    out.push_back(
        make_result("matmul", "blocked", c.tag, blocked, flops, naive));
    if (simd_available()) {
      const double simd = time_ms([&] { ops::matmul(a, b, cb); });
      out.push_back(make_result("matmul", "simd", c.tag, simd, flops, naive));
    }
  }
}

void bench_aggregate(std::vector<KernelBenchResult>& out) {
  // FedAvg server reduction: 16 client updates of 100k weights, the
  // fused weighted_accumulate kernel both tables implement.
  const std::size_t num = 16, dim = 100'000;
  std::vector<std::vector<float>> updates(num);
  std::vector<const float*> srcs(num);
  std::vector<double> coeff(num, 1.0 / static_cast<double>(num));
  for (std::size_t u = 0; u < num; ++u) {
    Rng rng(700 + u);
    updates[u].resize(dim);
    for (float& x : updates[u]) x = static_cast<float>(rng.uniform(-1, 1));
    srcs[u] = updates[u].data();
  }
  std::vector<float> result(dim);
  const double flops = 2.0 * static_cast<double>(num) *
                       static_cast<double>(dim);
  const char* tag = "16x100000";
  const auto run = [&](const ops::KernelTable& t) {
    return time_ms([&] {
      t.weighted_accumulate(srcs.data(), coeff.data(), num, result.data(), 0,
                            dim);
    });
  };
  const double scalar = run(ops::scalar_kernels());
  out.push_back(
      make_result("weighted_avg", "scalar", tag, scalar, flops, scalar));
  if (simd_available()) {
    const double simd = run(*ops::simd_kernels());
    out.push_back(
        make_result("weighted_avg", "simd", tag, simd, flops, scalar));
  }
}

void bench_pairwise(std::vector<KernelBenchResult>& out) {
  // Proximity matrix between 64 clients' 16k-float layer vectors.
  const std::size_t num = 64, dim = 16'384;
  std::vector<std::vector<float>> vectors(num);
  for (std::size_t i = 0; i < num; ++i) {
    Rng rng(800 + i);
    vectors[i].resize(dim);
    for (float& x : vectors[i]) x = static_cast<float>(rng.uniform(-1, 1));
  }
  // One dot per ordered pair under the Gram trick, plus the norm pass.
  const double flops = 2.0 * static_cast<double>(dim) *
                       (static_cast<double>(num * (num - 1)) / 2.0 +
                        static_cast<double>(num));
  const char* tag = "64x16384";
  ops::set_simd_enabled(false);
  const double scalar =
      time_ms([&] { cluster::pairwise_euclidean(vectors); });
  out.push_back(
      make_result("pairwise_l2", "scalar", tag, scalar, flops, scalar));
  if (simd_available()) {
    const double simd =
        time_ms([&] { cluster::pairwise_euclidean(vectors); });
    out.push_back(
        make_result("pairwise_l2", "simd", tag, simd, flops, scalar));
  }
}

struct ConvCase {
  ops::Conv2dSpec spec;
  std::size_t batch, h, w;
  const char* tag;
};

void bench_conv(const ConvCase& c, std::vector<KernelBenchResult>& out) {
  const std::size_t ho = c.spec.out_size(c.h), wo = c.spec.out_size(c.w);
  const Tensor input =
      random_tensor({c.batch, c.spec.in_channels, c.h, c.w}, 3);
  const Tensor weight = random_tensor({c.spec.out_channels, c.spec.in_channels,
                                       c.spec.kernel, c.spec.kernel},
                                      4);
  const Tensor bias = random_tensor({c.spec.out_channels}, 5);
  const Tensor grad_out =
      random_tensor({c.batch, c.spec.out_channels, ho, wo}, 6);
  // MACs * 2, per direction (forward, d/dinput, and d/dparams each do
  // the same multiply-add count; bias terms are negligible).
  const double flops = 2.0 * static_cast<double>(c.batch * ho * wo) *
                       static_cast<double>(c.spec.out_channels *
                                           c.spec.in_channels) *
                       static_cast<double>(c.spec.kernel * c.spec.kernel);

  Tensor output;
  Tensor grad_input(input.shape());
  Tensor grad_weight(weight.shape());
  Tensor grad_bias(bias.shape());
  Tensor columns, pix, grad_cols;

  ops::set_simd_enabled(false);  // scalar rows stay baseline-comparable
  const double fwd_direct = time_ms(
      [&] { ops::conv2d_forward(input, weight, bias, c.spec, output); });
  const double fwd_im2col = time_ms([&] {
    ops::conv2d_forward_im2col(input, weight, bias, c.spec, output, columns,
                               pix);
  });

  const double bwd_direct = time_ms([&] {
    ops::conv2d_backward_input(grad_out, weight, c.spec, grad_input);
    ops::conv2d_backward_params(input, grad_out, c.spec, grad_weight,
                                grad_bias);
  });
  // `columns` still holds the forward expansion — exactly the reuse
  // Conv2d::backward performs. grad_cols is a distinct scratch so the
  // cached columns are not clobbered between reps.
  const double bwd_im2col = time_ms([&] {
    ops::conv2d_backward_params_im2col(grad_out, columns, c.spec, grad_weight,
                                       grad_bias, pix);
    ops::conv2d_backward_input_im2col(grad_out, weight, c.spec, grad_input,
                                      pix, grad_cols);
  });

  out.push_back(make_result("conv2d_forward", "direct", c.tag, fwd_direct,
                            flops, fwd_direct));
  out.push_back(make_result("conv2d_forward", "im2col", c.tag, fwd_im2col,
                            flops, fwd_direct));
  out.push_back(make_result("conv2d_backward", "direct", c.tag, bwd_direct,
                            2.0 * flops, bwd_direct));
  out.push_back(make_result("conv2d_backward", "im2col", c.tag, bwd_im2col,
                            2.0 * flops, bwd_direct));
  out.push_back(make_result("conv2d_fwd_bwd", "direct", c.tag,
                            fwd_direct + bwd_direct, 3.0 * flops,
                            fwd_direct + bwd_direct));
  out.push_back(make_result("conv2d_fwd_bwd", "im2col", c.tag,
                            fwd_im2col + bwd_im2col, 3.0 * flops,
                            fwd_direct + bwd_direct));

  if (simd_available()) {
    const double fwd_simd = time_ms([&] {
      ops::conv2d_forward_im2col(input, weight, bias, c.spec, output, columns,
                                 pix);
    });
    const double bwd_simd = time_ms([&] {
      ops::conv2d_backward_params_im2col(grad_out, columns, c.spec,
                                         grad_weight, grad_bias, pix);
      ops::conv2d_backward_input_im2col(grad_out, weight, c.spec, grad_input,
                                        pix, grad_cols);
    });
    out.push_back(make_result("conv2d_forward", "simd", c.tag, fwd_simd,
                              flops, fwd_direct));
    out.push_back(make_result("conv2d_backward", "simd", c.tag, bwd_simd,
                              2.0 * flops, bwd_direct));
    out.push_back(make_result("conv2d_fwd_bwd", "simd", c.tag,
                              fwd_simd + bwd_simd, 3.0 * flops,
                              fwd_direct + bwd_direct));
  }
}

void print_results(const std::vector<KernelBenchResult>& results) {
  std::printf("%-18s %-8s %-22s %10s %9s %8s\n", "op", "variant", "shape",
              "ms", "GFLOP/s", "speedup");
  for (const KernelBenchResult& r : results) {
    std::printf("%-18s %-8s %-22s %10.4f %9.2f %7.2fx\n", r.op.c_str(),
                r.variant.c_str(), r.shape.c_str(), r.ms, r.gflops, r.speedup);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_kernels.json";

  std::printf("kernel tables: scalar%s\n",
              simd_available() ? " + simd (active)" : " only");

  std::vector<KernelBenchResult> results;
  bench_matmul(results);
  bench_aggregate(results);
  bench_pairwise(results);

  const ConvCase conv_cases[] = {
      {{3, 6, 5, 0, 1}, 32, 32, 32, "lenet5-conv1 b32 3x32x32"},
      {{6, 16, 5, 0, 1}, 32, 14, 14, "lenet5-conv2 b32 6x14x14"},
      {{16, 16, 3, 1, 1}, 8, 32, 32, "vgg-mini-conv2 b8 16x32x32"},
      {{16, 32, 3, 1, 1}, 8, 16, 16, "vgg-mini-conv3 b8 16x16x16"},
      {{32, 64, 3, 1, 1}, 8, 8, 8, "vgg-mini-conv4 b8 32x8x8"},
  };
  for (const ConvCase& c : conv_cases) bench_conv(c, results);

  print_results(results);
  bench::write_kernel_bench_json(json_path, results);
  std::printf("\nwrote %s (%zu records)\n", json_path.c_str(), results.size());
  return 0;
}
