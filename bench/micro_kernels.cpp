// google-benchmark microbenchmarks for the hot kernels underlying the
// simulation: GEMM, direct vs im2col convolution, pooling, SVD,
// pairwise distances, and hierarchical clustering scaling.
#include <benchmark/benchmark.h>

#include "cluster/distance.hpp"
#include "cluster/hierarchical.hpp"
#include "linalg/svd.hpp"
#include "nn/models.hpp"
#include "tensor/ops.hpp"
#include "utils/rng.hpp"

namespace {

using namespace fedclust;

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  return Tensor::randn(std::move(shape), rng);
}

void BM_MatmulSquare(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor a = random_tensor({n, n}, 1);
  const Tensor b = random_tensor({n, n}, 2);
  Tensor c;
  for (auto _ : state) {
    ops::matmul(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_MatmulSquare)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_Conv2dDirect(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const ops::Conv2dSpec spec{3, 6, 5, 0, 1};
  const Tensor input = random_tensor({batch, 3, 32, 32}, 3);
  const Tensor weight = random_tensor({6, 3, 5, 5}, 4);
  const Tensor bias = random_tensor({6}, 5);
  Tensor out;
  for (auto _ : state) {
    ops::conv2d_forward(input, weight, bias, spec, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_Conv2dDirect)->Arg(1)->Arg(8)->Arg(32);

void BM_Conv2dIm2col(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const ops::Conv2dSpec spec{3, 6, 5, 0, 1};
  const Tensor input = random_tensor({batch, 3, 32, 32}, 3);
  const Tensor weight = random_tensor({6, 3, 5, 5}, 4);
  const Tensor bias = random_tensor({6}, 5);
  Tensor out, scratch;
  for (auto _ : state) {
    ops::conv2d_forward_im2col(input, weight, bias, spec, out, scratch);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_Conv2dIm2col)->Arg(1)->Arg(8)->Arg(32);

void BM_MaxPool(benchmark::State& state) {
  const Tensor input = random_tensor({32, 6, 28, 28}, 6);
  Tensor out;
  std::vector<std::size_t> argmax;
  for (auto _ : state) {
    ops::max_pool_forward(input, 2, out, argmax);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_MaxPool);

void BM_Lenet5Forward(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  nn::Model model = nn::lenet5({3, 32, 32, 10});
  Rng rng(7);
  model.init_params(rng);
  const Tensor x = random_tensor({batch, 3, 32, 32}, 8);
  for (auto _ : state) {
    Tensor y = model.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_Lenet5Forward)->Arg(1)->Arg(32);

void BM_SvdTallThin(benchmark::State& state) {
  const auto cols = static_cast<std::size_t>(state.range(0));
  Rng rng(9);
  Matrix a(1024, cols);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) a(i, j) = rng.normal();
  }
  for (auto _ : state) {
    Matrix u = truncated_left_singular_vectors_gram(a, 3);
    benchmark::DoNotOptimize(u.data());
  }
}
BENCHMARK(BM_SvdTallThin)->Arg(8)->Arg(16)->Arg(32);

void BM_PairwiseEuclidean(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(10);
  std::vector<std::vector<float>> vectors(n, std::vector<float>(850));
  for (auto& v : vectors) {
    for (auto& x : v) x = static_cast<float>(rng.normal());
  }
  for (auto _ : state) {
    Matrix d = cluster::pairwise_euclidean(vectors);
    benchmark::DoNotOptimize(d.data());
  }
}
BENCHMARK(BM_PairwiseEuclidean)->Arg(10)->Arg(50)->Arg(100);

void BM_AgglomerativeCluster(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  std::vector<std::vector<float>> vectors(n, std::vector<float>(16));
  for (auto& v : vectors) {
    for (auto& x : v) x = static_cast<float>(rng.normal());
  }
  const Matrix d = cluster::pairwise_euclidean(vectors);
  for (auto _ : state) {
    cluster::Dendrogram dendro =
        cluster::agglomerative_cluster(d, cluster::Linkage::kAverage);
    benchmark::DoNotOptimize(dendro.merges.data());
  }
}
BENCHMARK(BM_AgglomerativeCluster)->Arg(10)->Arg(50)->Arg(100)->Arg(200);

}  // namespace

BENCHMARK_MAIN();
