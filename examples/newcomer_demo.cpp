// Newcomer demo: FedClust's real-time client admission.
//
// Scenario: a cross-device deployment where two user populations exist —
// "photography" users whose data covers classes 0-4 and "document" users
// covering classes 5-9. After the initial population is clustered, new
// devices join the federation over time; each must be routed to the
// right cluster immediately, without re-running the clustering or
// waiting for more communication rounds.
//
// Build & run:   ./build/examples/newcomer_demo
#include <cstdio>

#include "cluster/metrics.hpp"
#include "core/fedclust.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "partition/partition.hpp"

using namespace fedclust;

int main() {
  const std::uint64_t seed = 7;
  const data::SyntheticGenerator generator(data::SyntheticKind::kFmnist,
                                           seed);
  Rng data_rng = Rng(seed).split(1);
  const data::Dataset pool = generator.generate(800, data_rng);

  // Base population: 10 clients in two latent groups with disjoint labels.
  Rng part_rng = Rng(seed).split(2);
  const partition::Partition part = partition::grouped_label_partition(
      pool, 10, {{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}}, part_rng);

  Rng split_rng = Rng(seed).split(3);
  std::vector<fl::ClientData> clients;
  for (const auto& ds : partition::materialize(pool, part)) {
    auto [train, test] = ds.stratified_split(0.25, split_rng);
    if (test.empty()) test = train;
    clients.push_back({std::move(train), std::move(test)});
  }

  nn::Model model = nn::lenet5(generator.image_spec());
  Rng init_rng = Rng(seed).split(4);
  model.init_params(init_rng);

  fl::FederationConfig config;
  config.local.epochs = 1;
  config.local.batch_size = 32;
  config.local.sgd.lr = 0.02;
  config.local.sgd.momentum = 0.9;
  config.seed = seed;
  fl::Federation federation(std::move(model), std::move(clients), config);

  core::FedClust fedclust({.warmup_epochs = 2});
  const fl::RunResult result = fedclust.run(federation, 4);
  const core::ClusteringOutcome& outcome = *fedclust.last_clustering();

  std::printf("base population clustered: %zu clusters, ARI vs truth %.2f\n",
              cluster::num_clusters(outcome.labels),
              cluster::adjusted_rand_index(outcome.labels, part.true_groups));
  for (std::size_t c = 0; c < outcome.labels.size(); ++c) {
    std::printf("  client %zu (group %zu) -> cluster %zu\n", c,
                part.true_groups[c], outcome.labels[c]);
  }

  // Newcomers arrive: one from each population, plus one "photography"
  // user with a narrower interest (only classes 0-1).
  struct Newcomer {
    const char* description;
    std::vector<std::size_t> per_class;
  };
  const Newcomer arrivals[] = {
      {"photography user (classes 0-4)", {12, 12, 12, 12, 12, 0, 0, 0, 0, 0}},
      {"document user (classes 5-9)", {0, 0, 0, 0, 0, 12, 12, 12, 12, 12}},
      {"narrow photography user (classes 0-1)",
       {30, 30, 0, 0, 0, 0, 0, 0, 0, 0}},
  };

  std::printf("\nadmitting newcomers (one local warmup + one partial "
              "upload each, no re-clustering):\n");
  Rng newcomer_rng = Rng(seed).split(99);
  for (std::size_t n = 0; n < std::size(arrivals); ++n) {
    const data::Dataset newcomer_data =
        generator.generate_per_class(arrivals[n].per_class, newcomer_rng);
    const std::size_t assigned = fedclust.assign_newcomer(
        federation.template_model(), newcomer_data, config.local,
        Rng(seed).split(200 + n), outcome);
    std::printf("  %-42s -> cluster %zu\n", arrivals[n].description,
                assigned);
  }

  std::printf("\n(after admission a newcomer simply downloads its cluster's "
              "model — accuracy %.2f%% on average for veterans)\n",
              100.0 * result.final_accuracy.mean);
  return 0;
}
