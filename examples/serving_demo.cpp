// End-to-end serving: train a small FedClust federation, freeze the
// per-cluster models into a snapshot, and answer live requests through
// the batched inference engine in every router mode — then hot-reload
// the same model generation from an on-disk FCKP checkpoint without
// restarting the engine.
//
// The demo prints, per mode, where each probe request was routed and
// what the cluster mixture looked like, and verifies two serving
// invariants on the spot:
//  * hard routing sends a request exactly where FedClust's newcomer
//    rule would have assigned that client;
//  * the batched answers are bit-identical to the synchronous unbatched
//    path.
//
// Build & run:   ./build/examples/serving_demo
#include <cstdio>
#include <filesystem>
#include <future>
#include <vector>

#include "bench_common.hpp"
#include "core/fedclust.hpp"
#include "robust/checkpoint.hpp"
#include "serve/batching.hpp"
#include "serve/registry.hpp"
#include "serve/router.hpp"

using namespace fedclust;

namespace {

constexpr std::size_t kClients = 10;
constexpr std::size_t kRounds = 3;
constexpr std::uint64_t kSeed = 29;
constexpr const char* kCheckpointPath = "serving_demo.ckpt";

}  // namespace

int main() {
  // 1. Train: grouped two-cluster population, LeNet-5, checkpointing on
  //    so the serving tier can also boot from the FCKP file.
  bench::Scenario s;
  s.num_clients = kClients;
  s.dirichlet_beta = -1.0;  // two crisp label groups
  s.within_group_beta = 0.0;
  s.pool_samples = 800;
  s.seed = kSeed;
  s.engine.local.epochs = 1;
  s.engine.local.batch_size = 32;
  s.engine.threads = 4;

  std::printf("== training FedClust (%zu clients, %zu rounds)\n", kClients,
              kRounds);
  fl::Federation fed = bench::make_federation(s);
  core::FedClust algo({.warmup_epochs = 1,
                       .rel_factor = 0.6,
                       .checkpoint_every = 1,
                       .checkpoint_path = kCheckpointPath});
  const fl::RunResult run = algo.run(fed, kRounds);
  const core::ClusteringOutcome& outcome = *algo.last_clustering();
  std::printf("   final acc %.4f, clusters %zu\n", run.final_accuracy.mean,
              run.cluster_weights.size());

  // 2. Freeze + publish generation 1.
  serve::ModelRegistry registry;
  registry.publish(serve::freeze(fed.template_model(), run, outcome));
  std::printf("== published snapshot v%llu (fp %016llx)\n",
              static_cast<unsigned long long>(registry.version()),
              static_cast<unsigned long long>(
                  registry.snapshot()->weights_fp));

  // 3. Probe requests: one synthetic sample per client, routed by that
  //    client's own warmup upload.
  const data::SyntheticGenerator gen(s.dataset, kSeed + 7);
  Rng rng = Rng(kSeed).split(105);
  const data::Dataset probes = gen.generate(kClients, rng);

  for (const serve::RouteMode mode :
       {serve::RouteMode::kHard, serve::RouteMode::kSoft,
        serve::RouteMode::kEnsemble}) {
    serve::EngineConfig cfg;
    cfg.router.mode = mode;
    cfg.max_batch = 8;
    cfg.max_delay_ms = 0.5;
    cfg.workers = 2;
    serve::BatchingEngine engine(registry, cfg);

    std::vector<std::future<serve::InferenceResult>> futures;
    for (std::size_t c = 0; c < kClients; ++c) {
      const std::size_t idx[] = {c};
      futures.push_back(engine.submit(c, probes.gather(idx).images,
                                      outcome.partial_weights[c]));
    }
    std::printf("== %s routing\n", serve::route_mode_name(mode));
    for (std::size_t c = 0; c < kClients; ++c) {
      const serve::InferenceResult res = futures[c].get();
      // The batched answer must equal the unbatched reference bitwise.
      const std::size_t idx[] = {c};
      const serve::InferenceResult ref = engine.infer(
          res.id, probes.gather(idx).images, outcome.partial_weights[c]);
      FEDCLUST_REQUIRE(res.probs == ref.probs && res.cluster == ref.cluster,
                       "batched != unbatched for client " << c);
      if (mode == serve::RouteMode::kHard) {
        FEDCLUST_REQUIRE(res.cluster == outcome.labels[c],
                         "hard routing diverged from the training-time "
                         "assignment for client " << c);
      }
      std::printf("   client %zu -> cluster %zu (w = [", c, res.cluster);
      for (std::size_t k = 0; k < res.weights.size(); ++k) {
        std::printf("%s%.3f", k == 0 ? "" : ", ", res.weights[k]);
      }
      std::printf("], batch rows %zu)\n", res.batch_rows);
    }
  }

  // 4. Hot reload: freeze the SAME generation from the FCKP checkpoint
  //    and publish it into a running engine — version moves, weights
  //    fingerprint (and thus the served models) stay identical.
  serve::EngineConfig cfg;
  cfg.workers = 2;
  serve::BatchingEngine engine(registry, cfg);
  const std::size_t idx[] = {std::size_t{0}};
  const serve::InferenceResult before =
      engine.submit(0, probes.gather(idx).images, outcome.partial_weights[0])
          .get();

  const serve::ModelSnapshot from_disk = serve::freeze_checkpoint(
      fed.template_model(), robust::load_checkpoint(kCheckpointPath));
  const std::uint64_t fp_before = registry.snapshot()->weights_fp;
  registry.publish(serve::ModelSnapshot(from_disk));
  const serve::InferenceResult after =
      engine.submit(1, probes.gather(idx).images, outcome.partial_weights[0])
          .get();
  FEDCLUST_REQUIRE(after.snapshot_version == before.snapshot_version + 1,
                   "engine did not observe the new snapshot");
  FEDCLUST_REQUIRE(registry.snapshot()->weights_fp == fp_before,
                   "checkpoint freeze changed the served weights");
  FEDCLUST_REQUIRE(after.probs == before.probs,
                   "identical weights must serve identical answers");
  std::printf("== hot reload from %s: v%llu -> v%llu, fp unchanged, "
              "answers bit-identical\n",
              kCheckpointPath,
              static_cast<unsigned long long>(before.snapshot_version),
              static_cast<unsigned long long>(after.snapshot_version));

  std::filesystem::remove(kCheckpointPath);
  std::printf("serving demo OK\n");
  return 0;
}
