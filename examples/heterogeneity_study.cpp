// Heterogeneity study: how the value of clustering depends on how
// non-IID the data actually is.
//
// Sweeps the Dirichlet beta for a fixed federation and reports, per
// level: the partition's heterogeneity index, the number of clusters
// FedClust discovers, and the accuracy gap between FedClust and FedAvg.
// Useful as a worked example of the partition + metrics APIs.
//
// Build & run:   ./build/examples/heterogeneity_study
#include <cstdio>

#include "algorithms/fedavg.hpp"
#include "core/fedclust.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "partition/partition.hpp"

using namespace fedclust;

namespace {

fl::Federation build_federation(double beta, std::uint64_t seed) {
  const data::SyntheticGenerator generator(data::SyntheticKind::kFmnist,
                                           seed);
  Rng data_rng = Rng(seed).split(1);
  const data::Dataset pool = generator.generate(600, data_rng);

  Rng part_rng = Rng(seed).split(2);
  const partition::Partition part =
      partition::dirichlet_partition(pool, 10, beta, part_rng, 12);

  Rng split_rng = Rng(seed).split(3);
  std::vector<fl::ClientData> clients;
  for (const auto& ds : partition::materialize(pool, part)) {
    auto [train, test] = ds.stratified_split(0.25, split_rng);
    if (test.empty()) test = train;
    clients.push_back({std::move(train), std::move(test)});
  }

  nn::Model model = nn::lenet5(generator.image_spec());
  Rng init_rng = Rng(seed).split(4);
  model.init_params(init_rng);

  fl::FederationConfig config;
  config.local.epochs = 1;
  config.local.batch_size = 32;
  config.local.sgd.lr = 0.02;
  config.local.sgd.momentum = 0.9;
  config.seed = seed;
  config.eval_every = 100;  // final evaluation only
  return fl::Federation(std::move(model), std::move(clients), config);
}

double skew_of(double beta, std::uint64_t seed) {
  const data::SyntheticGenerator generator(data::SyntheticKind::kFmnist,
                                           seed);
  Rng data_rng = Rng(seed).split(1);
  const data::Dataset pool = generator.generate(600, data_rng);
  Rng part_rng = Rng(seed).split(2);
  const partition::Partition part =
      partition::dirichlet_partition(pool, 10, beta, part_rng, 12);
  return partition::heterogeneity_index(pool, part);
}

}  // namespace

int main() {
  const std::size_t rounds = 8;
  const std::uint64_t seed = 31;

  std::printf("%-10s %-12s %-12s %-14s %-10s %s\n", "beta", "skew index",
              "FedAvg (%)", "FedClust (%)", "clusters", "gap (pp)");

  for (const double beta : {0.05, 0.1, 0.3, 1.0, 100.0}) {
    double acc_avg = 0.0;
    {
      fl::Federation fed = build_federation(beta, seed);
      acc_avg =
          100.0 * algorithms::FedAvg().run(fed, rounds).final_accuracy.mean;
    }
    double acc_fc = 0.0;
    std::size_t clusters = 0;
    {
      fl::Federation fed = build_federation(beta, seed);
      const fl::RunResult r =
          core::FedClust({.warmup_epochs = 2, .min_gap_ratio = 1.5})
              .run(fed, rounds);
      acc_fc = 100.0 * r.final_accuracy.mean;
      clusters = r.final_round().num_clusters;
    }
    std::printf("%-10.2f %-12.3f %-12.2f %-14.2f %-10zu %+.2f\n", beta,
                skew_of(beta, seed), acc_avg, acc_fc, clusters,
                acc_fc - acc_avg);
  }

  std::printf("\nreading: the more skewed the label marginals (small beta),\n"
              "the more FedClust's per-cluster models pay off; near IID the\n"
              "advantage disappears by design.\n");
  return 0;
}
