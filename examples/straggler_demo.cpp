// Stragglers and wall-clock time: FedClust vs CFL on a cellular fleet,
// plus round-based vs buffered-async FedClust on the same fleet.
//
// The sync methods run over the simulated network with a 50%-straggler
// cutoff: each training round closes once the fastest half of the
// expected uploads arrive, so slow devices' updates are discarded. The
// point of the demo is the TIME axis the network layer adds: FedClust
// pays one reliable formation round (everyone waits, but the uploads
// are tiny final-layer slices), then trains on the fast cohort, while
// CFL ships full models every round while its clusters form.
//
// The async row replaces the round barrier entirely: every client
// re-dispatches the moment its upload lands, and each cluster's buffer
// flushes as soon as K updates arrive (staleness-weighted). Slow
// devices keep contributing instead of being cut, and fast devices
// never idle at a barrier.
//
// Build & run:   ./build/examples/straggler_demo
#include <cstdio>
#include <memory>

#include "algorithms/cfl.hpp"
#include "core/fedclust.hpp"
#include "core/fedclust_async.hpp"
#include "data/synthetic.hpp"
#include "fl/async.hpp"
#include "nn/models.hpp"
#include "partition/partition.hpp"

using namespace fedclust;

namespace {

constexpr std::size_t kClients = 8;
constexpr std::size_t kRounds = 10;
constexpr double kTarget = 0.4;

fl::Federation build_federation(std::uint64_t seed) {
  const data::SyntheticGenerator generator(data::SyntheticKind::kFmnist,
                                           seed);
  Rng data_rng = Rng(seed).split(1);
  const data::Dataset pool = generator.generate(400, data_rng);

  // Two crisp label groups so both methods have clusters to find.
  Rng part_rng = Rng(seed).split(2);
  const partition::Partition part = partition::grouped_label_partition(
      pool, kClients, {{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}}, part_rng);

  Rng split_rng = Rng(seed).split(3);
  std::vector<fl::ClientData> clients;
  for (const auto& ds : partition::materialize(pool, part)) {
    auto [train, test] = ds.stratified_split(0.25, split_rng);
    if (test.empty()) test = train;
    clients.push_back({std::move(train), std::move(test)});
  }

  nn::Model model = nn::lenet5(generator.image_spec());
  Rng init_rng = Rng(seed).split(4);
  model.init_params(init_rng);

  fl::FederationConfig config;
  config.local.epochs = 2;
  config.local.batch_size = 32;
  config.local.sgd.lr = 0.02;
  config.local.sgd.momentum = 0.9;
  config.seed = seed;
  config.eval_every = 1;

  // The scenario under study: a mobile fleet where each round waits only
  // for the fastest 50% of uploads.
  config.network.enabled = true;
  config.network.profile = net::Profile::kCellular;
  config.network.straggler_frac = 0.5;
  return fl::Federation(std::move(model), std::move(clients), config);
}

void report(const char* name, const fl::RunResult& result,
            const fl::Federation& fed) {
  std::size_t hit_round = 0;
  std::uint64_t hit_bytes = 0;
  double hit_seconds = 0.0;
  const bool reached_rounds =
      result.rounds_to_accuracy(kTarget, hit_round, hit_bytes);
  const bool reached_time = result.time_to_accuracy(kTarget, hit_seconds);

  char rounds_buf[32] = "-";
  char secs_buf[32] = "-";
  if (reached_rounds) {
    std::snprintf(rounds_buf, sizeof(rounds_buf), "%zu", hit_round + 1);
  }
  if (reached_time) {
    std::snprintf(secs_buf, sizeof(secs_buf), "%.1f", hit_seconds);
  }
  std::printf("%-9s %8s %14s %14.1f %10.2f %12.1f\n", name, rounds_buf,
              secs_buf, fed.sim_time(),
              static_cast<double>(fed.comm().total()) / 1e6,
              100.0 * result.final_accuracy.mean);
}

}  // namespace

int main() {
  std::printf("Straggler demo — cellular fleet, %zu clients, %zu rounds,\n"
              "rounds close after the fastest 50%% of uploads arrive.\n\n",
              kClients, kRounds);
  std::printf("%-9s %8s %14s %14s %10s %12s\n", "method", "rounds",
              "s to target", "sim total (s)", "MB total", "final acc %");
  std::printf("%-9s %8s %14s %14s %10s %12s\n", "", "to 40%", "", "", "", "");

  {
    core::FedClust algo(
        core::FedClustConfig{.warmup_epochs = 2, .rel_factor = 0.6});
    fl::Federation fed = build_federation(/*seed=*/17);
    const fl::RunResult result = algo.run(fed, kRounds);
    report("FedClust", result, fed);
  }
  {
    algorithms::Cfl algo(algorithms::CflConfig{
        .eps1 = 0.8, .eps2 = 1.2, .warmup_rounds = 2, .min_cluster_size = 3});
    fl::Federation fed = build_federation(/*seed=*/17);
    const fl::RunResult result = algo.run(fed, kRounds);
    report("CFL", result, fed);
  }
  {
    // Same federation, no round barrier: clients re-dispatch as soon as
    // their upload lands and each cluster flushes every K=4 updates,
    // downweighted by staleness. Async flushes land ~2x faster than
    // sync rounds close on this fleet, so a 2x flush budget gives it
    // roughly the sync runs' virtual-time horizon.
    fl::AsyncConfig ac;
    ac.buffer_k = 4;
    ac.staleness_fn = fl::StalenessKind::kPolynomial;
    ac.staleness_exponent = 0.5;
    const std::size_t flushes = 2 * kRounds * kClients / ac.buffer_k;
    core::FedClustAsync adapter(
        core::FedClustConfig{.warmup_epochs = 2, .rel_factor = 0.6});
    fl::Federation fed = build_federation(/*seed=*/17);
    const fl::RunResult result = fl::run_async(fed, adapter, ac, flushes);
    report("async", result, fed);
  }

  std::printf(
      "\nFedClust's formation round is reliable (it waits for every "
      "client),\nbut uploads only final-layer slices; every later round "
      "trains just the\nfast half of the fleet. CFL pays full-model "
      "traffic under the same\ncutoff while its clusters are still "
      "forming. The async row is FedClust\nwithout the barrier: buffered "
      "aggregation keeps every device in the\nfederation, and the "
      "\"rounds\" column counts buffer flushes instead of\nsynchronized "
      "rounds.\n");
  return 0;
}
