// Byzantine sign-flip attack vs robust aggregation.
//
// A fixed 20% of the fleet (2 of 10 clients, one inside each data
// group) uploads amplified sign-flipped weights every training round:
// each attacker reflects its update about the round's start weights and
// scales it, w' = start - 8*(w - start), dragging the plain weighted
// average far past cancelling the honest progress. The formation round
// is spared
// (start_round = 1) so FedClust's clustering forms from honest uploads
// — the attack targets training, not formation.
//
// Six runs: {FedAvg, FedClust} x {clean, attacked + weighted mean,
// attacked + coordinate-wise trimmed mean}. The trimmed mean drops the
// largest and smallest value of every coordinate (trim_frac 0.25 — one
// value per side even in a 4-member cluster), so the attacked run
// retains nearly all of its fault-free accuracy while the weighted mean
// degrades. Results also land in BENCH_robustness.json.
//
// Build & run:   ./build/examples/byzantine_demo
#include <cstdio>
#include <string>
#include <vector>

#include "algorithms/fedavg.hpp"
#include "bench_common.hpp"
#include "core/fedclust.hpp"
#include "robust/aggregate.hpp"

using namespace fedclust;

namespace {

constexpr std::size_t kClients = 10;
constexpr std::size_t kRounds = 8;
constexpr std::uint64_t kSeed = 23;

enum class Attack { kNone, kWeightedMean, kTrimmedMean };

fl::Federation build_federation(Attack attack) {
  bench::Scenario s;
  s.num_clients = kClients;
  s.dirichlet_beta = -1.0;  // two crisp label groups
  s.within_group_beta = 0.0;
  s.pool_samples = 2000;
  s.seed = kSeed;
  s.engine.local.epochs = 2;
  s.engine.local.batch_size = 32;
  s.engine.local.sgd.lr = 0.02;
  s.engine.local.sgd.momentum = 0.9;
  s.engine.threads = 2;

  if (attack != Attack::kNone) {
    // One attacker inside each data group: client 4 (group 0, the even
    // clients) and client 7 (group 1, the odd clients).
    s.engine.faults.enabled = true;
    s.engine.faults.byzantine_clients = {4, 7};
    s.engine.faults.start_round = 1;  // spare the formation round
    // Amplified sign flip (Fang-style): the pure reflection's delta has
    // honest magnitude and hides inside SGD noise; at 8x a 20% cohort
    // drags the average far past cancelling the honest progress, while
    // the trimmed mean stays bounded by the honest spread (a non-extreme
    // attacker coordinate lies inside the honest range by definition).
    s.engine.faults.sign_flip_scale = 8.0;
  }
  if (attack == Attack::kTrimmedMean) {
    s.engine.robust.rule = robust::AggregationRule::kTrimmedMean;
    s.engine.robust.trim_frac = 0.25;
  }
  return bench::make_federation(s);
}

fl::RunResult run_one(const std::string& algorithm, Attack attack) {
  fl::Federation fed = build_federation(attack);
  if (algorithm == "FedAvg") {
    algorithms::FedAvg algo;
    return algo.run(fed, kRounds);
  }
  // Longer warmup + looser cut so formation recovers the two true data
  // groups (k = 2); over-fragmented singleton clusters would make any
  // per-cluster robust aggregation a no-op.
  core::FedClust algo(
      core::FedClustConfig{.warmup_epochs = 3, .rel_factor = 1.0});
  return algo.run(fed, kRounds);
}

}  // namespace

int main() {
  std::printf(
      "Byzantine demo — %zu clients, 20%% sign-flip attackers "
      "(clients 4 and 7),\n%zu rounds, attack active from round 1.\n\n",
      kClients, kRounds);
  std::printf("%-9s %-9s %-13s %12s %10s\n", "method", "scenario", "rule",
              "final acc %", "retention");

  std::vector<bench::RobustnessBenchResult> results;
  bool attacked_mean_degrades = true;
  bool trimmed_retains = true;
  for (const std::string algorithm : {"FedAvg", "FedClust"}) {
    double clean_acc = 0.0;
    for (const Attack attack :
         {Attack::kNone, Attack::kWeightedMean, Attack::kTrimmedMean}) {
      const fl::RunResult r = run_one(algorithm, attack);
      bench::RobustnessBenchResult row;
      row.algorithm = algorithm;
      row.scenario = attack == Attack::kNone ? "clean" : "attacked";
      row.rule = robust::to_string(attack == Attack::kTrimmedMean
                                       ? robust::AggregationRule::kTrimmedMean
                                       : robust::AggregationRule::kWeightedMean);
      row.acc_mean = r.final_accuracy.mean;
      row.acc_std = r.final_accuracy.std;
      if (attack == Attack::kNone) {
        clean_acc = row.acc_mean;
      } else if (clean_acc > 0.0) {
        row.clean_retention = row.acc_mean / clean_acc;
      }
      if (attack == Attack::kWeightedMean) {
        attacked_mean_degrades =
            attacked_mean_degrades && row.clean_retention < 0.9;
      }
      if (attack == Attack::kTrimmedMean) {
        trimmed_retains = trimmed_retains && row.clean_retention >= 0.9;
      }
      std::printf("%-9s %-9s %-13s %12.1f %9.0f%%\n", algorithm.c_str(),
                  row.scenario.c_str(), row.rule.c_str(),
                  100.0 * row.acc_mean, 100.0 * row.clean_retention);
      results.push_back(std::move(row));
    }
  }

  bench::write_robustness_bench_json("BENCH_robustness.json", results);
  std::printf(
      "\nPlain weighted averaging lets 20%% sign-flippers cancel honest "
      "progress;\nthe coordinate-wise trimmed mean (trim 0.25) drops the "
      "extreme value on\neach side per coordinate, so the attacked run "
      "tracks the fault-free one.\nResults written to "
      "BENCH_robustness.json.\n");
  if (!attacked_mean_degrades) {
    std::printf("note: weighted-mean attack degradation below threshold "
                "in this configuration\n");
  }
  if (!trimmed_retains) {
    std::fprintf(stderr,
                 "FAIL: trimmed mean retained < 90%% of fault-free "
                 "accuracy\n");
    return 1;
  }
  return 0;
}
