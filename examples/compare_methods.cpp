// Side-by-side comparison of all six FL methods on one workload.
//
// A compact version of the Table-I experiment on a single dataset and
// seed, printing per-round accuracy curves so the convergence behaviour
// (not just the endpoint) is visible: CFL's slow cluster formation vs
// FedClust's one-shot jump is the paper's core story.
//
// Build & run:   ./build/examples/compare_methods
#include <cstdio>
#include <memory>

#include "algorithms/cfl.hpp"
#include "algorithms/fedavg.hpp"
#include "algorithms/fedper.hpp"
#include "algorithms/ifca.hpp"
#include "algorithms/local_only.hpp"
#include "algorithms/pacfl.hpp"
#include "core/fedclust.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "partition/partition.hpp"

using namespace fedclust;

namespace {

fl::Federation build_federation(std::uint64_t seed) {
  const data::SyntheticGenerator generator(data::SyntheticKind::kFmnist,
                                           seed);
  Rng data_rng = Rng(seed).split(1);
  const data::Dataset pool = generator.generate(800, data_rng);

  Rng part_rng = Rng(seed).split(2);
  const partition::Partition part =
      partition::dirichlet_partition(pool, 12, 0.1, part_rng);

  Rng split_rng = Rng(seed).split(3);
  std::vector<fl::ClientData> clients;
  for (const auto& ds : partition::materialize(pool, part)) {
    auto [train, test] = ds.stratified_split(0.25, split_rng);
    if (test.empty()) test = train;
    clients.push_back({std::move(train), std::move(test)});
  }

  nn::Model model = nn::lenet5(generator.image_spec());
  Rng init_rng = Rng(seed).split(4);
  model.init_params(init_rng);

  fl::FederationConfig config;
  config.local.epochs = 1;
  config.local.batch_size = 32;
  config.local.sgd.lr = 0.02;
  config.local.sgd.momentum = 0.9;
  config.seed = seed;
  config.eval_every = 2;
  return fl::Federation(std::move(model), std::move(clients), config);
}

}  // namespace

int main() {
  const std::size_t rounds = 10;

  std::vector<std::unique_ptr<fl::Algorithm>> algorithms;
  algorithms.push_back(std::make_unique<algorithms::FedAvg>());
  algorithms.push_back(std::make_unique<algorithms::FedProx>(0.05));
  algorithms.push_back(std::make_unique<algorithms::Cfl>(
      algorithms::CflConfig{.eps1 = 0.8, .eps2 = 1.2, .warmup_rounds = 3,
                            .min_cluster_size = 3}));
  algorithms.push_back(std::make_unique<algorithms::Ifca>(
      algorithms::IfcaConfig{.num_clusters = 4, .init_perturbation = 0.1}));
  algorithms.push_back(std::make_unique<algorithms::Pacfl>(
      algorithms::PacflConfig{.subspace_rank = 3,
                              .samples_per_class_cap = 24}));
  algorithms.push_back(std::make_unique<core::FedClust>(
      core::FedClustConfig{.warmup_epochs = 2, .rel_factor = 0.6}));
  // Extension baselines beyond the paper's Table I:
  algorithms.push_back(std::make_unique<algorithms::FedAvgM>(0.9));
  algorithms.push_back(std::make_unique<algorithms::FedPer>());
  algorithms.push_back(std::make_unique<algorithms::LocalOnly>());

  std::printf("FMNIST stand-in, 12 clients, Dir(0.1), %zu rounds\n\n",
              rounds);
  std::printf("%-9s", "round:");
  for (std::size_t r = 0; r < rounds; ++r) {
    if ((r + 1) % 2 == 0 || r + 1 == rounds) std::printf("  r%-4zu", r);
  }
  std::printf("  clusters  MB total\n");

  for (auto& algo : algorithms) {
    fl::Federation fed = build_federation(/*seed=*/21);
    const fl::RunResult result = algo->run(fed, rounds);
    std::printf("%-9s", algo->name().c_str());
    for (const fl::RoundMetrics& r : result.rounds) {
      // The one-shot methods also record their formation round (round 0);
      // skip it so every row shows the same evaluation columns.
      if (r.round == 0 && result.rounds.size() > 1) continue;
      std::printf("  %5.1f", 100.0 * r.acc_mean);
    }
    std::printf("  %8zu  %7.2f\n", result.final_round().num_clusters,
                static_cast<double>(fed.comm().total()) / 1e6);
  }

  std::printf("\ncolumns are mean local test accuracy (%%) at the evaluated "
              "rounds; 'MB total' sums all up+down traffic.\n");
  return 0;
}
