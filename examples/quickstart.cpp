// Quickstart: the minimal end-to-end FedClust run.
//
// Builds a 10-client federation over the Fashion-MNIST stand-in with
// Dirichlet(0.1) label skew, runs FedClust for a few rounds, and prints
// the discovered clusters and per-round accuracy. Start here to see the
// public API surface:
//
//   SyntheticGenerator -> Dataset -> dirichlet_partition -> Federation
//   -> FedClust::run -> RunResult
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "core/fedclust.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "partition/partition.hpp"

using namespace fedclust;

int main() {
  // 1. Data: a synthetic stand-in for Fashion-MNIST (28x28 grayscale,
  //    10 classes) — see DESIGN.md §3 for why datasets are synthesized.
  const std::uint64_t seed = 42;
  const data::SyntheticGenerator generator(data::SyntheticKind::kFmnist,
                                           seed);
  Rng data_rng = Rng(seed).split(1);
  const data::Dataset pool = generator.generate(/*n=*/800, data_rng);

  // 2. Partition the pool across 10 clients with heavy label skew —
  //    the "Non-IID Dir(0.1)" setting of the paper's Table I.
  Rng part_rng = Rng(seed).split(2);
  const partition::Partition part =
      partition::dirichlet_partition(pool, /*num_clients=*/10,
                                     /*beta=*/0.1, part_rng);
  std::printf("partitioned %zu samples over %zu clients "
              "(heterogeneity index %.2f)\n",
              pool.size(), part.num_clients(),
              partition::heterogeneity_index(pool, part));

  // 3. Each client keeps a private train split and a local test split
  //    with the same label distribution.
  Rng split_rng = Rng(seed).split(3);
  std::vector<fl::ClientData> clients;
  for (const auto& ds : partition::materialize(pool, part)) {
    auto [train, test] = ds.stratified_split(/*test_fraction=*/0.25,
                                             split_rng);
    if (test.empty()) test = train;
    clients.push_back({std::move(train), std::move(test)});
  }

  // 4. The shared model: LeNet-5, identically initialized everywhere.
  nn::Model model = nn::lenet5(generator.image_spec());
  Rng init_rng = Rng(seed).split(4);
  model.init_params(init_rng);

  // 5. The federation: local-training hyperparameters + engine knobs.
  fl::FederationConfig config;
  config.local.epochs = 1;
  config.local.batch_size = 32;
  config.local.sgd.lr = 0.02;
  config.local.sgd.momentum = 0.9;
  config.seed = seed;
  fl::Federation federation(std::move(model), std::move(clients), config);

  // 6. FedClust: one-shot weight-driven clustering, then per-cluster
  //    FedAvg. The threshold is picked automatically from the dendrogram.
  core::FedClust fedclust({.warmup_epochs = 2, .min_gap_ratio = 1.5});
  const fl::RunResult result = fedclust.run(federation, /*rounds=*/8);

  std::printf("\ndiscovered %zu clusters in one communication round:\n",
              result.rounds.front().num_clusters);
  for (std::size_t c = 0; c < federation.num_clients(); ++c) {
    std::printf("  client %zu -> cluster %zu   (labels: ", c,
                result.cluster_labels[c]);
    const auto hist = federation.client_data(c)->train.label_histogram();
    for (std::size_t k = 0; k < hist.size(); ++k) {
      if (hist[k] > 0) std::printf("%zu ", k);
    }
    std::printf(")\n");
  }

  std::printf("\nround | mean local test accuracy\n");
  for (const fl::RoundMetrics& r : result.rounds) {
    std::printf("%5zu | %6.2f%%  (clusters: %zu)\n", r.round,
                100.0 * r.acc_mean, r.num_clusters);
  }
  std::printf("\nfinal: %.2f%% ± %.2f%% across clients, "
              "%.1f kB uploaded in the clustering round\n",
              100.0 * result.final_accuracy.mean,
              100.0 * result.final_accuracy.std,
              static_cast<double>(federation.comm().round_upload()[0]) / 1e3);
  return 0;
}
